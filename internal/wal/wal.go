package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
)

// Typed errors. Callers test with errors.Is.
var (
	// ErrProgramMismatch reports a recovery attempt against a log written
	// by a different program: replaying another program's batches would
	// silently produce wrong answers, so Open refuses.
	ErrProgramMismatch = errors.New("wal: program hash mismatch")
	// ErrCompacted reports a Since request for batches that retention has
	// already pruned; the caller must bootstrap from a snapshot instead.
	ErrCompacted = errors.New("wal: requested batches compacted")
	// ErrEpochGap reports an Append whose epoch does not extend the log by
	// exactly one — the monotone-epoch invariant every reader relies on.
	ErrEpochGap = errors.New("wal: non-consecutive batch epoch")
	// ErrCorrupt reports log state no torn-tail truncation can repair: a
	// gap between the snapshot and the first logged batch, a manifest
	// pointing at a missing or mismatched snapshot file.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

const (
	segMagic   = "FLWALSEG"
	segVersion = 1
	// maxRecordPayload bounds one record; anything larger in a length
	// prefix is treated as a torn tail, not an allocation request.
	maxRecordPayload    = 64 << 20
	defaultSegmentBytes = 4 << 20
	manifestName        = "MANIFEST"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch is one epoch-stamped mutation batch: the assert/retract atoms that
// actually changed the base EDB, rendered as ground-atom strings (the
// parser round-trips them).
type Batch struct {
	Epoch   int64    `json:"epoch"`
	Assert  []string `json:"assert,omitempty"`
	Retract []string `json:"retract,omitempty"`
}

// batchBody is the JSON payload of a record; the epoch travels as the
// fixed binary header in front of it.
type batchBody struct {
	Assert  []string `json:"assert,omitempty"`
	Retract []string `json:"retract,omitempty"`
}

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// ProgramHash fingerprints the program whose mutation history this log
	// records; segment headers, snapshots, and the manifest all carry it,
	// and recovery refuses a mismatch with ErrProgramMismatch.
	ProgramHash string
	// FsyncInterval is the group-commit window: appends arriving within one
	// interval share a single fsync. Zero (the default) fsyncs every append
	// before acknowledging it.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size; 0 means 4 MiB.
	// Retention prunes whole segments, so smaller segments reclaim space
	// sooner after a snapshot.
	SegmentBytes int64
}

// Recovery is what Open reconstructed: the newest snapshot (nil when none
// was ever written), the committed batches after it in epoch order, and the
// epoch the log ends at — the exact epoch of the last acknowledged batch
// before the crash.
type Recovery struct {
	Snapshot *Snapshot
	Batches  []Batch
	Epoch    int64
	// TruncatedTail counts torn-tail truncations recovery performed (bytes
	// after the last valid record that were dropped).
	TruncatedTail int64
}

// segment is the in-memory metadata of one on-disk segment file. first/last
// are record epochs, valid when recs > 0; size is the synced length, the
// prefix Since may serve.
type segment struct {
	path        string
	first, last int64
	recs        int
	size        int64
}

// commitWaiter is one Append waiting for its group commit.
type commitWaiter struct {
	ch    chan error
	start time.Time
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File   // active segment, nil until the first append
	segments []*segment // ascending epoch order; last is active
	// epoch is the last durable (synced) epoch; written runs ahead of it
	// while a group commit is pending. syncedSize/writtenSize mirror the
	// same split for the active segment's length.
	epoch, written          int64
	syncedSize, writtenSize int64
	pendingRecs             int
	snapEpoch               int64
	closed                  bool
	// broken is set when a failed fsync could not be unwound; the log
	// refuses further appends rather than guess at its on-disk state.
	broken error

	waiters    []commitWaiter
	kick       chan struct{}
	done       chan struct{}
	syncerDone chan struct{}

	batches, fsyncs, snapshots int64
	replayed, truncated        int64
	groupCommit                *obsv.Histogram
}

// Open opens (or creates) the log in opts.Dir, recovers the snapshot and
// committed log tail, truncates any torn tail, and returns the log ready
// for appends. The recovery describes exactly the state a restarted server
// must rebuild: snapshot base, then batches, ending at Recovery.Epoch.
func Open(opts Options) (l *Log, rec *Recovery, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				l, rec, err = nil, nil, fmt.Errorf("wal: open: recovered panic: %w", e)
				return
			}
			l, rec, err = nil, nil, fmt.Errorf("wal: open: recovered panic: %v", r)
		}
	}()
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	l = &Log{
		opts:        opts,
		kick:        make(chan struct{}, 1),
		done:        make(chan struct{}),
		syncerDone:  make(chan struct{}),
		groupCommit: obsv.NewHistogram(),
	}
	rec = &Recovery{}
	snap, err := readNewestSnapshot(opts.Dir, opts.ProgramHash)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		l.snapEpoch = snap.Epoch
		rec.Snapshot = snap
		rec.Epoch = snap.Epoch
	}
	if err := l.scanSegments(rec); err != nil {
		return nil, nil, err
	}
	l.epoch, l.written = rec.Epoch, rec.Epoch
	if n := len(l.segments); n > 0 {
		seg := l.segments[n-1]
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
		l.syncedSize, l.writtenSize = seg.size, seg.size
	}
	if opts.FsyncInterval > 0 {
		go l.syncLoop()
	} else {
		close(l.syncerDone)
	}
	return l, rec, nil
}

// Epoch returns the epoch of the last durably committed batch.
func (l *Log) Epoch() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// SnapshotEpoch returns the newest snapshot's epoch (0 when none exists).
func (l *Log) SnapshotEpoch() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapEpoch
}

// FirstAvailable returns the earliest batch epoch the log still holds, and
// whether it holds any at all. A replica asking for older batches must
// bootstrap from the snapshot instead.
func (l *Log) FirstAvailable() (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstAvailableLocked()
}

func (l *Log) firstAvailableLocked() (int64, bool) {
	for _, seg := range l.segments {
		if seg.recs > 0 {
			return seg.first, true
		}
	}
	return 0, false
}

// Append durably logs one batch. The batch's epoch must extend the log by
// exactly one (ErrEpochGap otherwise). Append returns only after the
// record is fsynced — under a positive FsyncInterval it waits for the
// group commit covering it — so a nil return means the batch survives any
// crash. On any error the record is not durable and the on-disk log is
// unwound to the last acknowledged batch.
func (l *Log) Append(b Batch) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if err := hitAppend(); err != nil {
		l.mu.Unlock()
		return err
	}
	if b.Epoch != l.written+1 {
		want := l.written + 1
		l.mu.Unlock()
		return fmt.Errorf("%w: got %d, want %d", ErrEpochGap, b.Epoch, want)
	}
	rec, err := encodeRecord(b)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if l.f == nil || l.writtenSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(b.Epoch); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		uerr := l.unwindLocked()
		l.mu.Unlock()
		if uerr != nil {
			return uerr
		}
		return err
	}
	l.written = b.Epoch
	l.writtenSize += int64(len(rec))
	l.pendingRecs++

	w := commitWaiter{ch: make(chan error, 1), start: time.Now()}
	l.waiters = append(l.waiters, w)
	if l.opts.FsyncInterval <= 0 {
		l.completeSyncLocked()
		l.mu.Unlock()
		return <-w.ch
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	l.mu.Unlock()
	return <-w.ch
}

// hitAppend is the WalAppend injection point, converted from a panic to an
// error so a fault rejects the batch cleanly before any bytes are written.
func hitAppend() (err error) {
	defer capturePanic(&err, "append")
	faultinject.Hit(faultinject.WalAppend)
	return nil
}

// completeSyncLocked fsyncs the written tail and resolves every pending
// waiter with the outcome. On fsync failure the unsynced tail is unwound —
// truncated back to the last durable offset — so an errored Append leaves
// no record behind for recovery to replay.
func (l *Log) completeSyncLocked() {
	ws := l.waiters
	l.waiters = nil
	if l.written == l.epoch && l.writtenSize == l.syncedSize {
		l.resolve(ws, nil)
		return
	}
	err := func() (err error) {
		defer capturePanic(&err, "fsync")
		faultinject.Hit(faultinject.WalFsync)
		return l.f.Sync()
	}()
	if err != nil {
		if uerr := l.unwindLocked(); uerr != nil {
			err = uerr
		}
		l.resolve(ws, err)
		return
	}
	l.fsyncs++
	l.epoch = l.written
	l.syncedSize = l.writtenSize
	seg := l.segments[len(l.segments)-1]
	if l.pendingRecs > 0 {
		if seg.recs == 0 {
			seg.first = l.epoch - int64(l.pendingRecs) + 1
		}
		seg.last = l.epoch
		seg.recs += l.pendingRecs
		l.batches += int64(l.pendingRecs)
		l.pendingRecs = 0
	}
	seg.size = l.syncedSize
	l.resolve(ws, nil)
}

func (l *Log) resolve(ws []commitWaiter, err error) {
	for _, w := range ws {
		l.groupCommit.Observe(time.Since(w.start))
		w.ch <- err
	}
}

// unwindLocked drops the unsynced written tail after a write or fsync
// failure: truncate back to the durable offset and rewind the bookkeeping.
// If even the truncate fails the log marks itself broken — guessing at the
// on-disk state would risk acknowledging batches that are not there.
func (l *Log) unwindLocked() error {
	if l.f != nil {
		if err := l.f.Truncate(l.syncedSize); err != nil {
			l.broken = fmt.Errorf("wal: unwind after failed sync: %v (log disabled)", err)
			return l.broken
		}
		if _, err := l.f.Seek(l.syncedSize, io.SeekStart); err != nil {
			l.broken = fmt.Errorf("wal: unwind after failed sync: %v (log disabled)", err)
			return l.broken
		}
	}
	l.written = l.epoch
	l.writtenSize = l.syncedSize
	l.pendingRecs = 0
	return nil
}

// rotateLocked flushes and closes the active segment and starts a new one
// whose name records the first epoch it will hold. The new header becomes
// durable with the first record's fsync (same file).
func (l *Log) rotateLocked(first int64) error {
	if l.f != nil {
		l.completeSyncLocked()
		if l.broken != nil {
			return l.broken
		}
		if l.written != l.epoch {
			return errors.New("wal: rotate with unsynced tail")
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeHeader(l.opts.ProgramHash)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	seg := &segment{path: path, size: int64(len(hdr))}
	l.segments = append(l.segments, seg)
	l.syncedSize, l.writtenSize = seg.size, seg.size
	return nil
}

// Since returns the committed batches with epochs in (after, Epoch()], in
// epoch order — the replica-tailing read. It reports ErrCompacted when
// retention has pruned any batch the caller would need.
func (l *Log) Since(after int64) ([]Batch, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if after >= l.epoch {
		return nil, nil
	}
	first, ok := l.firstAvailableLocked()
	if !ok || after+1 < first {
		return nil, fmt.Errorf("%w: batches after epoch %d requested, log begins at epoch %d (snapshot at %d)",
			ErrCompacted, after, first, l.snapEpoch)
	}
	var out []Batch
	for _, seg := range l.segments {
		if seg.recs == 0 || seg.last <= after {
			continue
		}
		batches, err := readSegmentBatches(seg, l.opts.ProgramHash)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			if b.Epoch > after && b.Epoch <= l.epoch {
				out = append(out, b)
			}
		}
	}
	return out, nil
}

// Stats snapshots the durability counters for /metrics.
func (l *Log) Stats() obsv.DurabilityStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var size int64
	for _, seg := range l.segments {
		size += seg.size
	}
	h := *l.groupCommit
	h.Bounds = append([]time.Duration(nil), l.groupCommit.Bounds...)
	h.BucketCounts = append([]int64(nil), l.groupCommit.BucketCounts...)
	first, _ := l.firstAvailableLocked()
	return obsv.DurabilityStats{
		Enabled:              true,
		WalEpoch:             l.epoch,
		LastSnapshotEpoch:    l.snapEpoch,
		FirstAvailableEpoch:  first,
		BatchesLogged:        l.batches,
		Fsyncs:               l.fsyncs,
		SnapshotsWritten:     l.snapshots,
		ReplayedBatches:      l.replayed,
		TruncatedTailRecords: l.truncated,
		Segments:             len(l.segments),
		WalBytes:             size,
		GroupCommitWall:      &h,
	}
}

// Close flushes any pending group commit and closes the log. Further
// operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	if l.f != nil {
		l.completeSyncLocked()
	}
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	l.mu.Unlock()
	<-l.syncerDone
	return err
}

// syncLoop is the group-commit goroutine: each kick opens one commit
// window of FsyncInterval, then a single fsync acknowledges every append
// that landed inside it.
func (l *Log) syncLoop() {
	defer close(l.syncerDone)
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
			timer := time.NewTimer(l.opts.FsyncInterval)
			select {
			case <-timer.C:
			case <-l.done:
				timer.Stop()
			}
			l.mu.Lock()
			if !l.closed {
				l.completeSyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// ---- record and header encoding ----

// segName names a segment file by the first epoch it holds; the fixed-width
// hex keeps lexical order equal to epoch order.
func segName(first int64) string {
	return fmt.Sprintf("wal-%016x.seg", uint64(first))
}

// encodeHeader builds the segment header: magic, version, program hash,
// and a CRC32C over the variable part.
func encodeHeader(hash string) []byte {
	hdr := make([]byte, 0, len(segMagic)+8+len(hash)+4)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(hash)))
	hdr = append(hdr, hash...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr[len(segMagic):], castagnoli))
	return hdr
}

// errTornHeader marks a segment whose header never became durable; legal
// only on the newest segment (dropped whole), corruption anywhere else.
var errTornHeader = errors.New("wal: torn segment header")

// checkHeader validates a segment header and returns its length and the
// program hash it recorded.
func checkHeader(data []byte, wantHash string) (int, error) {
	if len(data) < len(segMagic)+8 {
		return 0, errTornHeader
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, errTornHeader
	}
	off := len(segMagic)
	version := binary.LittleEndian.Uint32(data[off:])
	hashLen := binary.LittleEndian.Uint32(data[off+4:])
	if version != segVersion {
		return 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, version)
	}
	if hashLen > 1<<10 || len(data) < off+8+int(hashLen)+4 {
		return 0, errTornHeader
	}
	end := off + 8 + int(hashLen)
	if crc32.Checksum(data[off:end], castagnoli) != binary.LittleEndian.Uint32(data[end:]) {
		return 0, errTornHeader
	}
	if got := string(data[off+8 : end]); got != wantHash {
		return 0, fmt.Errorf("%w: segment written for program %s", ErrProgramMismatch, got)
	}
	return end + 4, nil
}

// encodeRecord builds one length-prefixed record: uint32 payload length,
// uint32 CRC32C of the payload, then the payload (8-byte little-endian
// epoch + JSON batch body).
func encodeRecord(b Batch) ([]byte, error) {
	body, err := json.Marshal(batchBody{Assert: b.Assert, Retract: b.Retract})
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint64(payload, uint64(b.Epoch))
	payload = append(payload, body...)
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)
	return rec, nil
}

// decodeRecord decodes the record at the front of data. ok is false when
// the bytes do not form a complete, checksummed record — the torn-tail
// signal.
func decodeRecord(data []byte) (Batch, int, bool) {
	if len(data) < 8 {
		return Batch{}, 0, false
	}
	plen := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen < 8 || plen > maxRecordPayload || len(data) < 8+int(plen) {
		return Batch{}, 0, false
	}
	payload := data[8 : 8+plen]
	if crc32.Checksum(payload, castagnoli) != crc {
		return Batch{}, 0, false
	}
	var body batchBody
	if err := json.Unmarshal(payload[8:], &body); err != nil {
		return Batch{}, 0, false
	}
	epoch := int64(binary.LittleEndian.Uint64(payload))
	return Batch{Epoch: epoch, Assert: body.Assert, Retract: body.Retract}, 8 + int(plen), true
}

// ---- recovery scan ----

// scanSegments walks the segment files in epoch order, validating headers,
// CRCs, and the epoch chain. The first invalid record anywhere truncates
// that segment and drops every later one — recovery keeps exactly a valid
// prefix of the acknowledged history.
func (l *Log) scanSegments(rec *Recovery) error {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	prev := int64(-1)
	truncatedAt := false
	for i, path := range names {
		last := i == len(names)-1
		if truncatedAt {
			// Everything after a truncation is an untrusted suffix.
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		seg, batches, torn, err := l.scanSegment(path, &prev, rec)
		if err != nil {
			if errors.Is(err, errTornHeader) && last {
				// The newest segment's header never became durable: the
				// segment holds nothing acknowledged. Drop it whole.
				if rerr := os.Remove(path); rerr != nil {
					return rerr
				}
				l.truncated++
				rec.TruncatedTail++
				continue
			}
			if errors.Is(err, errTornHeader) {
				return fmt.Errorf("%w: %v (%s)", ErrCorrupt, err, path)
			}
			return err
		}
		if torn {
			l.truncated++
			rec.TruncatedTail++
			truncatedAt = true
		}
		if seg.recs == 0 && !torn && !last {
			// An empty interior segment holds nothing worth keeping.
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		l.segments = append(l.segments, seg)
		for _, b := range batches {
			if b.Epoch > l.snapEpoch {
				rec.Batches = append(rec.Batches, b)
				l.replayed++
			}
		}
		if seg.recs > 0 && seg.last > rec.Epoch {
			rec.Epoch = seg.last
		}
	}
	return nil
}

// scanSegment reads one segment, returning its metadata, decoded batches,
// and whether a torn tail was truncated off. prev carries the epoch chain
// across segments (-1 before the first record anywhere).
func (l *Log) scanSegment(path string, prev *int64, rec *Recovery) (*segment, []Batch, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	hdrLen, err := checkHeader(data, l.opts.ProgramHash)
	if err != nil {
		return nil, nil, false, err
	}
	seg := &segment{path: path}
	var batches []Batch
	off := hdrLen
	torn := false
	for off < len(data) {
		b, n, ok := decodeRecord(data[off:])
		if !ok {
			torn = true
			break
		}
		faultinject.Hit(faultinject.Replay)
		if *prev >= 0 {
			if b.Epoch != *prev+1 {
				// A chain break past a valid CRC is still corruption; keep
				// the prefix, drop the rest.
				torn = true
				break
			}
		} else {
			start := int64(1)
			if rec.Snapshot != nil {
				start = l.snapEpoch + 1
			}
			if b.Epoch <= 0 {
				torn = true
				break
			}
			if b.Epoch > start {
				return nil, nil, false, fmt.Errorf("%w: log begins at epoch %d, snapshot covers through %d",
					ErrCorrupt, b.Epoch, l.snapEpoch)
			}
		}
		*prev = b.Epoch
		if seg.recs == 0 {
			seg.first = b.Epoch
		}
		seg.last = b.Epoch
		seg.recs++
		batches = append(batches, b)
		off += n
	}
	if torn || off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, nil, false, err
		}
		torn = true
	}
	seg.size = int64(off)
	return seg, batches, torn, nil
}

// readSegmentBatches re-reads a segment's committed records for Since. Only
// the synced prefix (seg.size) is read, so an in-flight group commit's
// records never leak to a replica before they are durable.
func readSegmentBatches(seg *segment, hash string) ([]Batch, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > seg.size {
		data = data[:seg.size]
	}
	hdrLen, err := checkHeader(data, hash)
	if err != nil {
		return nil, err
	}
	var out []Batch
	off := hdrLen
	for off < len(data) {
		b, n, ok := decodeRecord(data[off:])
		if !ok {
			return nil, fmt.Errorf("%w: unreadable committed record in %s at offset %d", ErrCorrupt, seg.path, off)
		}
		out = append(out, b)
		off += n
	}
	return out, nil
}

// capturePanic converts a panic (a fault-injection *Fault, or anything
// else) into an error so durability failures surface as rejected batches,
// never as a crashed server.
func capturePanic(err *error, op string) {
	if r := recover(); r != nil {
		if e, ok := r.(error); ok {
			*err = fmt.Errorf("wal: %s: %w", op, e)
			return
		}
		*err = fmt.Errorf("wal: %s: panic: %v", op, r)
	}
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
