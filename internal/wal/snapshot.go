package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"factorlog/internal/faultinject"
)

// Snapshot is a full base-EDB capture at an epoch: the complete set of
// extensional facts (ground-atom strings) after every batch through Epoch
// was applied. Recovery seeds from the newest snapshot and replays only the
// log tail after it.
type Snapshot struct {
	Epoch       int64    `json:"epoch"`
	ProgramHash string   `json:"program_hash"`
	Facts       []string `json:"facts"`
}

// manifest is the MANIFEST file: which snapshot file is current, and the
// checksum to verify it by. It is replaced atomically (temp + rename), so
// recovery always sees either the old complete snapshot or the new one.
type manifest struct {
	Epoch       int64  `json:"epoch"`
	ProgramHash string `json:"program_hash"`
	Snapshot    string `json:"snapshot"`
	CRC32C      uint32 `json:"crc32c"`
}

func snapName(epoch int64) string {
	return fmt.Sprintf("snap-%016x.snap", uint64(epoch))
}

// WriteSnapshot durably records a base snapshot and then prunes log
// segments and older snapshots it makes redundant. The snapshot file and
// the MANIFEST are each written to a temp file, fsynced, and renamed into
// place, so a crash at any point leaves the previous snapshot intact; a
// failed snapshot write never loses batches, because the log stays
// authoritative until the manifest rename lands.
func (l *Log) WriteSnapshot(s Snapshot) (err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	defer capturePanic(&err, "snapshot")
	if l.closed {
		return ErrClosed
	}
	faultinject.Hit(faultinject.SnapshotWrite)
	if s.ProgramHash == "" {
		s.ProgramHash = l.opts.ProgramHash
	}
	if s.ProgramHash != l.opts.ProgramHash {
		return fmt.Errorf("%w: snapshot for program %s", ErrProgramMismatch, s.ProgramHash)
	}
	if s.Epoch > l.epoch {
		return fmt.Errorf("wal: snapshot epoch %d ahead of committed epoch %d", s.Epoch, l.epoch)
	}
	if s.Epoch <= l.snapEpoch {
		// Snapshots only move forward; re-snapshotting the covered past is
		// a no-op, not an error.
		return nil
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	name := snapName(s.Epoch)
	if err := writeFileAtomic(l.opts.Dir, name, data); err != nil {
		return err
	}
	m := manifest{Epoch: s.Epoch, ProgramHash: s.ProgramHash, Snapshot: name, CRC32C: crc32.Checksum(data, castagnoli)}
	mdata, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(l.opts.Dir, manifestName, mdata); err != nil {
		return err
	}
	l.snapEpoch = s.Epoch
	l.snapshots++
	l.pruneLocked()
	return nil
}

// writeFileAtomic writes name in dir via temp file + fsync + rename +
// directory fsync — the write is either fully visible or absent.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// pruneLocked is retention: drop every non-active segment fully covered by
// the newest snapshot, and every snapshot file other than the current one.
// Removal failures are tolerated — a leftover file costs disk, not
// correctness, and the next prune retries it.
func (l *Log) pruneLocked() {
	keep := l.segments[:0]
	for i, seg := range l.segments {
		active := i == len(l.segments)-1
		if !active && seg.recs > 0 && seg.last <= l.snapEpoch {
			if os.Remove(seg.path) == nil {
				continue
			}
		}
		keep = append(keep, seg)
	}
	l.segments = keep
	current := snapName(l.snapEpoch)
	if names, err := filepath.Glob(filepath.Join(l.opts.Dir, "snap-*.snap")); err == nil {
		for _, p := range names {
			if filepath.Base(p) != current {
				os.Remove(p)
			}
		}
	}
	syncDir(l.opts.Dir)
}

// readNewestSnapshot loads the snapshot the MANIFEST points at, verifying
// its checksum and program hash. With no manifest (first boot, or a crash
// before the very first one landed) it falls back to the newest parseable
// snap-*.snap file; with neither it returns nil — recovery starts from the
// program's seed facts.
func readNewestSnapshot(dir, wantHash string) (*Snapshot, error) {
	mdata, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(mdata, &m); err != nil {
			return nil, fmt.Errorf("%w: unreadable manifest: %v", ErrCorrupt, err)
		}
		if m.ProgramHash != wantHash {
			return nil, fmt.Errorf("%w: snapshot written for program %s", ErrProgramMismatch, m.ProgramHash)
		}
		data, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
		if err != nil {
			return nil, fmt.Errorf("%w: manifest names missing snapshot %s: %v", ErrCorrupt, m.Snapshot, err)
		}
		if crc32.Checksum(data, castagnoli) != m.CRC32C {
			return nil, fmt.Errorf("%w: snapshot %s fails manifest checksum", ErrCorrupt, m.Snapshot)
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("%w: unreadable snapshot %s: %v", ErrCorrupt, m.Snapshot, err)
		}
		if s.Epoch != m.Epoch || s.ProgramHash != m.ProgramHash {
			return nil, fmt.Errorf("%w: snapshot %s disagrees with manifest", ErrCorrupt, m.Snapshot)
		}
		return &s, nil
	case errors.Is(err, os.ErrNotExist):
		// Fall through to the unreferenced-snapshot scan.
	default:
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, p := range names {
		if strings.Contains(filepath.Base(p), ".tmp-") {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			continue
		}
		if s.ProgramHash != wantHash {
			return nil, fmt.Errorf("%w: snapshot written for program %s", ErrProgramMismatch, s.ProgramHash)
		}
		return &s, nil
	}
	return nil, nil
}
