package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"factorlog/internal/faultinject"
)

const testHash = "sha256:test-program"

func testOpen(t *testing.T, dir string, opt func(*Options)) (*Log, *Recovery) {
	t.Helper()
	opts := Options{Dir: dir, ProgramHash: testHash}
	if opt != nil {
		opt(&opts)
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func testBatch(epoch int64) Batch {
	return Batch{
		Epoch:   epoch,
		Assert:  []string{fmt.Sprintf("e(%d, %d).", epoch, epoch+1)},
		Retract: []string{fmt.Sprintf("old(%d).", epoch)},
	}
}

func appendN(t *testing.T, l *Log, from, to int64) {
	t.Helper()
	for e := from; e <= to; e++ {
		if err := l.Append(testBatch(e)); err != nil {
			t.Fatalf("Append(epoch %d): %v", e, err)
		}
	}
}

func TestRoundtripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, rec := testOpen(t, dir, nil)
	if rec.Epoch != 0 || rec.Snapshot != nil || len(rec.Batches) != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	appendN(t, l, 1, 7)
	if got := l.Epoch(); got != 7 {
		t.Fatalf("Epoch() = %d, want 7", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := testOpen(t, dir, nil)
	if rec2.Epoch != 7 {
		t.Fatalf("recovered epoch %d, want 7", rec2.Epoch)
	}
	if len(rec2.Batches) != 7 {
		t.Fatalf("recovered %d batches, want 7", len(rec2.Batches))
	}
	for i, b := range rec2.Batches {
		if want := testBatch(int64(i + 1)); !reflect.DeepEqual(b, want) {
			t.Fatalf("batch %d = %+v, want %+v", i, b, want)
		}
	}
	// Appends continue the chain across a reopen.
	appendN(t, l2, 8, 9)
	if got := l2.Epoch(); got != 9 {
		t.Fatalf("Epoch() after reopen appends = %d, want 9", got)
	}
}

func TestEpochMonotonicity(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), nil)
	if err := l.Append(testBatch(2)); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("Append(2) on empty log: %v, want ErrEpochGap", err)
	}
	appendN(t, l, 1, 1)
	if err := l.Append(testBatch(3)); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("Append(3) after epoch 1: %v, want ErrEpochGap", err)
	}
	if err := l.Append(testBatch(1)); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("re-Append(1): %v, want ErrEpochGap", err)
	}
	appendN(t, l, 2, 2)
}

func TestSince(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), func(o *Options) {
		o.SegmentBytes = 64 // force rotation so Since spans segments
	})
	appendN(t, l, 1, 5)
	got, err := l.Since(2)
	if err != nil {
		t.Fatalf("Since(2): %v", err)
	}
	if len(got) != 3 || got[0].Epoch != 3 || got[2].Epoch != 5 {
		t.Fatalf("Since(2) = %+v, want epochs 3..5", got)
	}
	all, err := l.Since(0)
	if err != nil {
		t.Fatalf("Since(0): %v", err)
	}
	if len(all) != 5 {
		t.Fatalf("Since(0) returned %d batches, want 5", len(all))
	}
	for i, b := range all {
		if want := testBatch(int64(i + 1)); !reflect.DeepEqual(b, want) {
			t.Fatalf("Since(0)[%d] = %+v, want %+v", i, b, want)
		}
	}
	if got, err := l.Since(5); err != nil || len(got) != 0 {
		t.Fatalf("Since(5) = %+v, %v; want empty", got, err)
	}
	if got, err := l.Since(99); err != nil || len(got) != 0 {
		t.Fatalf("Since(99) = %+v, %v; want empty", got, err)
	}
}

func TestSnapshotRetentionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, func(o *Options) {
		o.SegmentBytes = 64 // a couple of records per segment
	})
	appendN(t, l, 1, 10)
	snap := Snapshot{Epoch: 8, Facts: []string{"base(1).", "base(2)."}}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := l.SnapshotEpoch(); got != 8 {
		t.Fatalf("SnapshotEpoch() = %d, want 8", got)
	}
	// Batches 9 and 10 must still be tailable; earlier ones are compacted
	// away with the pruned segments.
	if got, err := l.Since(8); err != nil || len(got) != 2 {
		t.Fatalf("Since(8) = %+v, %v; want epochs 9,10", got, err)
	}
	if _, err := l.Since(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Since(0) after prune: %v, want ErrCompacted", err)
	}
	st := l.Stats()
	if st.LastSnapshotEpoch != 8 || st.SnapshotsWritten != 1 {
		t.Fatalf("stats after snapshot: %+v", st)
	}
	l.Close()

	l2, rec := testOpen(t, dir, nil)
	if rec.Snapshot == nil {
		t.Fatal("recovery lost the snapshot")
	}
	if rec.Snapshot.Epoch != 8 || !reflect.DeepEqual(rec.Snapshot.Facts, snap.Facts) {
		t.Fatalf("recovered snapshot %+v", rec.Snapshot)
	}
	if rec.Epoch != 10 || len(rec.Batches) != 2 || rec.Batches[0].Epoch != 9 {
		t.Fatalf("recovered tail %+v, want epochs 9,10 ending at 10", rec)
	}
	// A second snapshot at the head allows full compaction of the tail.
	if err := l2.WriteSnapshot(Snapshot{Epoch: 10, Facts: []string{"base(3)."}}); err != nil {
		t.Fatalf("WriteSnapshot(10): %v", err)
	}
	appendN(t, l2, 11, 11)
	if got, err := l2.Since(10); err != nil || len(got) != 1 {
		t.Fatalf("Since(10) = %+v, %v; want epoch 11", got, err)
	}
}

func TestSnapshotValidation(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), nil)
	appendN(t, l, 1, 3)
	if err := l.WriteSnapshot(Snapshot{Epoch: 9}); err == nil {
		t.Fatal("snapshot ahead of the log was accepted")
	}
	if err := l.WriteSnapshot(Snapshot{Epoch: 2, ProgramHash: "sha256:other"}); !errors.Is(err, ErrProgramMismatch) {
		t.Fatalf("foreign-program snapshot: %v, want ErrProgramMismatch", err)
	}
	if err := l.WriteSnapshot(Snapshot{Epoch: 2}); err != nil {
		t.Fatalf("WriteSnapshot(2): %v", err)
	}
	// Moving backwards is a no-op, not an error.
	if err := l.WriteSnapshot(Snapshot{Epoch: 1}); err != nil {
		t.Fatalf("backwards snapshot: %v", err)
	}
	if got := l.SnapshotEpoch(); got != 2 {
		t.Fatalf("SnapshotEpoch() = %d, want 2", got)
	}
}

func TestProgramHashMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, nil)
	appendN(t, l, 1, 2)
	if err := l.WriteSnapshot(Snapshot{Epoch: 1}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.Close()
	if _, _, err := Open(Options{Dir: dir, ProgramHash: "sha256:other"}); !errors.Is(err, ErrProgramMismatch) {
		t.Fatalf("Open with foreign hash: %v, want ErrProgramMismatch", err)
	}
	// The refusal must not have damaged the log.
	_, rec := testOpen(t, dir, nil)
	if rec.Epoch != 2 {
		t.Fatalf("recovered epoch %d after refused open, want 2", rec.Epoch)
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, func(o *Options) {
		o.FsyncInterval = 20 * time.Millisecond
	})
	const n = 32
	var (
		mu   sync.Mutex
		next = int64(1)
		wg   sync.WaitGroup
	)
	// Concurrent appenders race for consecutive epochs: each claims the
	// next epoch and spins past ErrEpochGap until its predecessor's write
	// has landed, so many batches pile into one commit window.
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			e := next
			next++
			mu.Unlock()
			for {
				err := l.Append(testBatch(e))
				if err == nil {
					return
				}
				if !errors.Is(err, ErrEpochGap) {
					t.Errorf("Append(%d): %v", e, err)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.BatchesLogged != n || st.WalEpoch != n {
		t.Fatalf("stats after concurrent appends: %+v", st)
	}
	if st.Fsyncs >= n {
		t.Fatalf("group commit never batched: %d fsyncs for %d batches", st.Fsyncs, n)
	}
	if st.GroupCommitWall == nil || st.GroupCommitWall.Count != n {
		t.Fatalf("group-commit histogram missing observations: %+v", st.GroupCommitWall)
	}
	l.Close()
	_, rec := testOpen(t, dir, nil)
	if rec.Epoch != n || len(rec.Batches) != n {
		t.Fatalf("recovered %d batches ending at %d, want %d", len(rec.Batches), rec.Epoch, n)
	}
}

func TestAppendFaultRejectsBatch(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, nil)
	appendN(t, l, 1, 2)
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.WalAppend},
	})
	err := l.Append(testBatch(3))
	disable()
	if err == nil {
		t.Fatal("Append under WalAppend fault succeeded")
	}
	var f *faultinject.Fault
	if !errors.As(err, &f) || f.Point != faultinject.WalAppend {
		t.Fatalf("Append error %v does not wrap the injected fault", err)
	}
	if got := l.Epoch(); got != 2 {
		t.Fatalf("Epoch() = %d after rejected append, want 2", got)
	}
	// The same epoch must be retryable once the fault clears.
	appendN(t, l, 3, 3)
	l.Close()
	_, rec := testOpen(t, dir, nil)
	if rec.Epoch != 3 || len(rec.Batches) != 3 {
		t.Fatalf("recovered %+v, want 3 batches", rec)
	}
}

func TestFsyncFaultUnwindsTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, nil)
	appendN(t, l, 1, 2)
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.WalFsync},
	})
	err := l.Append(testBatch(3))
	disable()
	if err == nil {
		t.Fatal("Append under WalFsync fault succeeded")
	}
	if got := l.Epoch(); got != 2 {
		t.Fatalf("Epoch() = %d after failed fsync, want 2", got)
	}
	// The unwind must have removed the unacknowledged record from disk:
	// retrying the same epoch extends a clean tail.
	appendN(t, l, 3, 3)
	got, err := l.Since(0)
	if err != nil || len(got) != 3 {
		t.Fatalf("Since(0) = %d batches, %v; want 3", len(got), err)
	}
	l.Close()
	_, rec := testOpen(t, dir, nil)
	if rec.Epoch != 3 || len(rec.Batches) != 3 || rec.TruncatedTail != 0 {
		t.Fatalf("recovered %+v, want a clean 3-batch log", rec)
	}
}

func TestSnapshotFaultKeepsLogAuthoritative(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), nil)
	appendN(t, l, 1, 4)
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.SnapshotWrite},
	})
	err := l.WriteSnapshot(Snapshot{Epoch: 3})
	disable()
	if err == nil {
		t.Fatal("WriteSnapshot under SnapshotWrite fault succeeded")
	}
	if got := l.SnapshotEpoch(); got != 0 {
		t.Fatalf("SnapshotEpoch() = %d after failed snapshot, want 0", got)
	}
	// No batch may be lost to a failed snapshot.
	if got, err := l.Since(0); err != nil || len(got) != 4 {
		t.Fatalf("Since(0) = %d batches, %v; want 4", len(got), err)
	}
	if err := l.WriteSnapshot(Snapshot{Epoch: 3}); err != nil {
		t.Fatalf("WriteSnapshot retry: %v", err)
	}
}

func TestReplayFault(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, nil)
	appendN(t, l, 1, 5)
	l.Close()
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.Replay},
	})
	_, _, err := Open(Options{Dir: dir, ProgramHash: testHash})
	disable()
	if err == nil {
		t.Fatal("Open under Replay fault succeeded")
	}
	// A crash during recovery must leave the log recoverable.
	_, rec := testOpen(t, dir, nil)
	if rec.Epoch != 5 || len(rec.Batches) != 5 {
		t.Fatalf("recovered %+v after faulted replay, want 5 batches", rec)
	}
}

func TestClosed(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), nil)
	appendN(t, l, 1, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(testBatch(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if _, err := l.Since(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Since after Close: %v, want ErrClosed", err)
	}
	if err := l.WriteSnapshot(Snapshot{Epoch: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close: %v, want ErrClosed", err)
	}
}

func TestRecoveryDropsOrphanedTornHeader(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, nil)
	appendN(t, l, 1, 3)
	l.Close()
	// Simulate a crash between segment creation and the first record's
	// fsync: a newest segment whose header is garbage.
	if err := os.WriteFile(filepath.Join(dir, segName(4)), []byte("FLWA"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := testOpen(t, dir, nil)
	if rec.Epoch != 3 || rec.TruncatedTail != 1 {
		t.Fatalf("recovered %+v, want epoch 3 with one truncation", rec)
	}
	// The dropped file must not block new appends.
	appendN(t, l2, 4, 4)
}
