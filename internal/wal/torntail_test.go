package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTornTailFixture writes a single-segment log of `batches` batches and
// returns the segment's bytes plus the offset where the last record begins.
// The offsets are computed with the same encoders the log uses — a
// white-box shortcut that keeps the property loop exact.
func buildTornTailFixture(t *testing.T, batches int64) ([]byte, int) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, ProgramHash: testHash})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, batches)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(encodeHeader(testHash))
	for e := int64(1); e < batches; e++ {
		rec, err := encodeRecord(testBatch(e))
		if err != nil {
			t.Fatal(err)
		}
		lastStart += len(rec)
	}
	lastRec, err := encodeRecord(testBatch(batches))
	if err != nil {
		t.Fatal(err)
	}
	if want := lastStart + len(lastRec); want != len(data) {
		t.Fatalf("fixture layout drifted: computed %d bytes, file has %d", want, len(data))
	}
	return data, lastStart
}

// checkTornRecovery opens a log directory holding the damaged segment and
// asserts recovery lands exactly on the last fully-committed epoch, with
// the tail truncation counted, and that the log accepts the next epoch —
// the torn batch was never acknowledged, so its epoch must be reusable.
func checkTornRecovery(t *testing.T, desc string, damaged []byte, wantEpoch int64, wantTruncations int64) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir, ProgramHash: testHash})
	if err != nil {
		t.Fatalf("%s: Open: %v", desc, err)
	}
	defer l.Close()
	if rec.Epoch != wantEpoch {
		t.Fatalf("%s: recovered epoch %d, want %d", desc, rec.Epoch, wantEpoch)
	}
	if int64(len(rec.Batches)) != wantEpoch {
		t.Fatalf("%s: recovered %d batches, want %d", desc, len(rec.Batches), wantEpoch)
	}
	for i, b := range rec.Batches {
		if b.Epoch != int64(i+1) {
			t.Fatalf("%s: batch %d has epoch %d", desc, i, b.Epoch)
		}
	}
	if rec.TruncatedTail != wantTruncations {
		t.Fatalf("%s: %d truncations, want %d", desc, rec.TruncatedTail, wantTruncations)
	}
	if err := l.Append(testBatch(wantEpoch + 1)); err != nil {
		t.Fatalf("%s: Append(%d) after recovery: %v", desc, wantEpoch+1, err)
	}
}

// TestTornTailTruncationEveryOffset simulates a crash mid-append: the
// segment is cut at every byte offset inside the final record. Recovery
// must land exactly on the last fully-committed epoch every time.
func TestTornTailTruncationEveryOffset(t *testing.T) {
	const batches = 4
	data, lastStart := buildTornTailFixture(t, batches)
	for cut := lastStart; cut < len(data); cut++ {
		damaged := append([]byte(nil), data[:cut]...)
		// A cut exactly at the record boundary is a clean (shorter) log,
		// not a torn one; every other cut leaves a partial record.
		wantTrunc := int64(1)
		if cut == lastStart {
			wantTrunc = 0
		}
		checkTornRecovery(t, fmt.Sprintf("truncate at %d/%d", cut, len(data)), damaged, batches-1, wantTrunc)
	}
}

// TestTornTailCorruptionEveryOffset flips one byte at every offset inside
// the final record — length prefix, checksum, epoch, and body alike. The
// CRC (or the length bound) must catch each one, and recovery must drop
// exactly the damaged record.
func TestTornTailCorruptionEveryOffset(t *testing.T) {
	const batches = 4
	data, lastStart := buildTornTailFixture(t, batches)
	for off := lastStart; off < len(data); off++ {
		damaged := append([]byte(nil), data...)
		damaged[off] ^= 0xff
		checkTornRecovery(t, fmt.Sprintf("corrupt byte %d/%d", off, len(data)), damaged, batches-1, 1)
	}
}

// TestTornTailRecoveryIsIdempotent reopens a once-repaired log and expects
// a clean scan: the first recovery already truncated the tail to disk.
func TestTornTailRecoveryIsIdempotent(t *testing.T) {
	const batches = 4
	data, lastStart := buildTornTailFixture(t, batches)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:lastStart+3], 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir, ProgramHash: testHash})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != batches-1 || rec.TruncatedTail != 1 {
		t.Fatalf("first recovery %+v, want epoch %d with one truncation", rec, batches-1)
	}
	l.Close()
	l2, rec2, err := Open(Options{Dir: dir, ProgramHash: testHash})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Epoch != batches-1 || rec2.TruncatedTail != 0 {
		t.Fatalf("second recovery %+v, want a clean log at epoch %d", rec2, batches-1)
	}
}
