// Package reduce implements argument reduction with respect to static
// argument positions (Definitions 5.1-5.2, Lemmas 5.1-5.2 of the paper):
// a bound argument position through which the query constant is passed
// unchanged by every recursive call can be replaced by the constant itself
// and deleted, lowering the predicate's arity. Reduction turns some
// programs outside the factorable classes (pseudo-left-linear rules,
// Example 5.2; shared bound variables, Example 5.1) into programs the
// theorems of Section 4 cover.
package reduce

import (
	"fmt"

	"factorlog/internal/ast"
)

// StaticPositions returns the argument positions of pred that are static
// with respect to the query (Definition 5.1): the position is bound (the
// query argument is ground) and in every rule, every body occurrence of
// pred carries the same variable there as the head. Positions whose head
// or body arguments are not plain variables are skipped (not static).
//
// The program must be a unit program for pred in the sense that all rules
// define pred; other head predicates are an error.
func StaticPositions(p *ast.Program, query ast.Atom) ([]int, error) {
	pred := query.Pred
	arity := len(query.Args)
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			return nil, fmt.Errorf("rule head %s: reduction requires a unit program for %s", r.Head, pred)
		}
		if len(r.Head.Args) != arity {
			return nil, fmt.Errorf("arity mismatch: query %d vs head %s", arity, r.Head)
		}
	}
	var out []int
positions:
	for pos := 0; pos < arity; pos++ {
		if !query.Args[pos].Ground() {
			continue // free position: not a candidate
		}
		for _, r := range p.Rules {
			h := r.Head.Args[pos]
			if !h.IsVar() {
				continue positions
			}
			for _, b := range r.Body {
				if b.Pred != pred {
					continue
				}
				if !b.Args[pos].IsVar() || b.Args[pos].Functor != h.Functor {
					continue positions
				}
			}
		}
		out = append(out, pos)
	}
	return out, nil
}

// Reduce produces the program reduced with respect to static position pos
// (Definition 5.2): the query constant is substituted for the variable in
// that position and the position is deleted from every occurrence of the
// predicate. It returns the reduced program and the reduced query; the
// reduced predicate is named <pred>_r<pos>. By Lemma 5.1 the reduced
// program is equivalent to the original with respect to the query.
func Reduce(p *ast.Program, query ast.Atom, pos int) (*ast.Program, ast.Atom, error) {
	static, err := StaticPositions(p, query)
	if err != nil {
		return nil, ast.Atom{}, err
	}
	ok := false
	for _, s := range static {
		if s == pos {
			ok = true
		}
	}
	if !ok {
		return nil, ast.Atom{}, fmt.Errorf("position %d of %s is not static for query %s",
			pos, query.Pred, query)
	}
	pred := query.Pred
	c := query.Args[pos]
	newPred := fmt.Sprintf("%s_r%d", pred, pos)

	drop := func(a ast.Atom) ast.Atom {
		args := make([]ast.Term, 0, len(a.Args)-1)
		args = append(args, a.Args[:pos]...)
		args = append(args, a.Args[pos+1:]...)
		return ast.Atom{Pred: newPred, Args: args}
	}

	out := &ast.Program{}
	for _, r := range p.Rules {
		s := ast.Subst{r.Head.Args[pos].Functor: c}
		rr := s.ApplyRule(r)
		body := make([]ast.Atom, len(rr.Body))
		for i, b := range rr.Body {
			if b.Pred == pred {
				body[i] = drop(b)
			} else {
				body[i] = b
			}
		}
		out.Add(ast.Rule{Head: drop(rr.Head), Body: body})
	}
	return out, drop(query), nil
}

// ReduceAll reduces with respect to every static position, left to right,
// returning the final program and query. With no static positions it
// returns the inputs unchanged.
func ReduceAll(p *ast.Program, query ast.Atom) (*ast.Program, ast.Atom, error) {
	for {
		static, err := StaticPositions(p, query)
		if err != nil {
			return nil, ast.Atom{}, err
		}
		if len(static) == 0 {
			return p, query, nil
		}
		p, query, err = Reduce(p, query, static[0])
		if err != nil {
			return nil, ast.Atom{}, err
		}
	}
}
