package reduce

import (
	"testing"

	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

// TestExample51 reduces the program of Example 5.1 with respect to its
// static first argument; the reduced program is covered by the theorems.
func TestExample51(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
		p(X, Y, Z) :- exit(X, Y, Z).
	`)
	query := parser.MustParseAtom("p(5, 6, U)")

	static, err := StaticPositions(p, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(static) != 1 || static[0] != 0 {
		t.Fatalf("static positions = %v, want [0]", static)
	}

	red, rq, err := Reduce(p, query, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		p_r0(Y, Z) :- a(5), p_r0(Y, W), d(W, U), p_r0(U, Z).
		p_r0(Y, Z) :- exit(5, Y, Z).
	`)
	if red.Canonical() != want.Canonical() {
		t.Errorf("reduced:\n%s\nwant:\n%s", red, want)
	}
	if rq.String() != "p_r0(6,U)" {
		t.Errorf("reduced query = %s", rq)
	}

	// Before reduction the theorems do not apply; after, they do.
	if _, err := core.AnalyzeQuery(p, query); err == nil {
		a, _ := core.AnalyzeQuery(p, query)
		if core.Classify(a) != core.ClassUnknown {
			t.Error("Example 5.1 should not classify before reduction")
		}
	}
	a, err := core.AnalyzeQuery(red, rq)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Classify(a); got == core.ClassUnknown {
		t.Errorf("reduced Example 5.1 should classify; summary:\n%s", a.Summary())
	}
}

// TestExample52 reduces the pseudo-left-linear program of Example 5.2 into
// a genuinely left-linear one.
func TestExample52(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
		p(X, Y, Z) :- exit(X, Y, Z).
	`)
	query := parser.MustParseAtom("p(5, 6, U)")
	red, rq, err := Reduce(p, query, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		p_r0(Y, Z) :- p_r0(Y, W), d(W, 5, Z).
		p_r0(Y, Z) :- exit(5, Y, Z).
	`)
	if red.Canonical() != want.Canonical() {
		t.Errorf("reduced:\n%s\nwant:\n%s", red, want)
	}
	a, err := core.AnalyzeQuery(red, rq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rules[0].Shape != core.ShapeLeftLinear {
		t.Errorf("reduced rule shape = %v (%s)", a.Rules[0].Shape, a.Rules[0].Reason)
	}
	if got := core.Classify(a); got == core.ClassUnknown {
		t.Error("reduced Example 5.2 should classify")
	}
}

// TestLemma51Equivalence: reduction preserves the query answers (Lemma 5.1)
// on concrete EDBs.
func TestLemma51Equivalence(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
		p(X, Y, Z) :- exit(X, Y, Z).
	`)
	query := parser.MustParseAtom("p(5, 6, U)")
	red, rq, err := Reduce(p, query, 0)
	if err != nil {
		t.Fatal(err)
	}

	load := func() *engine.DB {
		db := engine.NewDB()
		facts, err := parser.Parse(`
			exit(5, 6, 1). exit(5, 7, 2). exit(4, 6, 3).
			d(1, 5, 10). d(10, 5, 11). d(2, 5, 12). d(3, 4, 13). d(1, 4, 14).
		`)
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.LoadFacts(db, facts.Facts); err != nil {
			t.Fatal(err)
		}
		return db
	}

	dbO := load()
	if _, err := engine.Eval(p, dbO, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _ := engine.AnswerSet(dbO, query)

	dbR := load()
	if _, err := engine.Eval(red, dbR, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	got, _ := engine.AnswerSet(dbR, rq)

	// want tuples are (5,6,u); got are (6,u): compare the u sets.
	if len(got) != len(want) {
		t.Errorf("answers: reduced %d vs original %d\n%v\n%v", len(got), len(want), got, want)
	}
	for a := range got {
		if !want["(5,"+a[1:]] {
			t.Errorf("reduced answer %s missing from original", a)
		}
	}
}

func TestStaticPositionsNegative(t *testing.T) {
	// Shifting variable: position 0 of the body occurrence differs.
	p := parser.MustParseProgram(`
		p(X, Y) :- p(Y, X).
		p(X, Y) :- e(X, Y).
	`)
	static, err := StaticPositions(p, parser.MustParseAtom("p(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(static) != 0 {
		t.Errorf("static = %v, want none", static)
	}
}

func TestStaticRequiresGroundQueryArg(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- p(X, W), e(W, Y).
		p(X, Y) :- e(X, Y).
	`)
	static, err := StaticPositions(p, parser.MustParseAtom("p(X, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(static) != 0 {
		t.Errorf("free query position reported static: %v", static)
	}
}

func TestReduceErrors(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- p(X, W), e(W, Y).
		p(X, Y) :- e(X, Y).
	`)
	// Position 1 is free, not static.
	if _, _, err := Reduce(p, parser.MustParseAtom("p(5, Y)"), 1); err == nil {
		t.Error("non-static position accepted")
	}
	// Non-unit program.
	p2 := parser.MustParseProgram(`
		p(X) :- q(X).
		q(X) :- e(X).
	`)
	if _, err := StaticPositions(p2, parser.MustParseAtom("p(5)")); err == nil {
		t.Error("non-unit program accepted")
	}
}

func TestReduceAll(t *testing.T) {
	// Two static positions.
	p := parser.MustParseProgram(`
		p(A, B, Y) :- p(A, B, W), e(W, Y).
		p(A, B, Y) :- exit(A, B, Y).
	`)
	red, rq, err := ReduceAll(p, parser.MustParseAtom("p(1, 2, U)"))
	if err != nil {
		t.Fatal(err)
	}
	if rq.Arity() != 1 {
		t.Errorf("reduced query = %s, want arity 1", rq)
	}
	arities, _ := red.PredArities()
	if arities[rq.Pred] != 1 {
		t.Errorf("reduced pred arity = %d", arities[rq.Pred])
	}
	// No static positions: unchanged.
	p2 := parser.MustParseProgram(`
		p(X, Y) :- p(Y, X).
		p(X, Y) :- e(X, Y).
	`)
	q2 := parser.MustParseAtom("p(5, Y)")
	same, sameQ, err := ReduceAll(p2, q2)
	if err != nil {
		t.Fatal(err)
	}
	if same != p2 || !sameQ.Equal(q2) {
		t.Error("no-op ReduceAll should return inputs")
	}
}
