package faultinject

import (
	"fmt"
	"sync/atomic"
)

// Point names an injection site. The catalog is small and stable — each
// point marks one class of failure the resilience layer must survive.
type Point uint8

const (
	// ArenaGrow fires when a relation's tuple arena is about to grow —
	// the moment a real allocation failure or corruption would surface in
	// storage (internal/engine.Relation.InsertRound).
	ArenaGrow Point = iota
	// WorkerStart fires as a parallel evaluation worker begins its unit
	// loop (internal/engine.runRound), exercising worker-panic degradation.
	WorkerStart
	// IndexProbe fires on a frozen index probe (internal/engine
	// Relation.probeFrozen), the parallel evaluator's hottest read path.
	IndexProbe
	// PlanCompile fires as the plan cache compiles a new plan
	// (internal/pipeline.PlanCache), exercising compile-failure handling
	// and the transient-error cache policy.
	PlanCompile
	// ContextCheck fires inside the engine's cancellation poll
	// (internal/engine.contextErr), the path every bounded evaluation
	// crosses at round boundaries.
	ContextCheck
	// StreamNext fires on the streaming executor's iterator hot path
	// (internal/stream, once per source row pulled), exercising panic
	// isolation in mid-pipeline operator state.
	StreamNext
	// FactsApply fires as a Materialization starts applying a mutation
	// batch (internal/engine.Materialization.Apply), before any state is
	// touched — exercising the poison-and-rebuild rollback path.
	FactsApply
	// DeltaWave fires at each incremental maintenance wave boundary
	// (internal/engine, insertion and deletion cascades), exercising a
	// panic with the materialization half-refreshed.
	DeltaWave
	// MatRefresh fires as the pipeline materialization registry refreshes
	// an entry to the current epoch (internal/pipeline.Materializer),
	// exercising refresh-failure handling on the serving path.
	MatRefresh
	// WalAppend fires as the write-ahead log appends a batch record
	// (internal/wal.Log.Append), before any bytes reach the file —
	// exercising the unacknowledged-batch rollback path.
	WalAppend
	// WalFsync fires as the write-ahead log fsyncs appended records
	// (internal/wal, group commit), after bytes are written but before
	// they are durable — exercising the truncate-the-unsynced-tail unwind.
	WalFsync
	// SnapshotWrite fires as a base snapshot is written
	// (internal/wal.Log.WriteSnapshot), exercising snapshot-failure
	// handling (the log remains authoritative; a failed snapshot must
	// never lose batches).
	SnapshotWrite
	// Replay fires per batch decoded during startup recovery
	// (internal/wal.Open), exercising crash-during-recovery handling.
	Replay

	// NumPoints is the number of named points; keep it last.
	NumPoints
)

var pointNames = [NumPoints]string{
	ArenaGrow:     "arena-grow",
	WorkerStart:   "worker-start",
	IndexProbe:    "index-probe",
	PlanCompile:   "plan-compile",
	ContextCheck:  "context-check",
	StreamNext:    "stream-next",
	FactsApply:    "facts-apply",
	DeltaWave:     "delta-wave",
	MatRefresh:    "mat-refresh",
	WalAppend:     "wal-append",
	WalFsync:      "wal-fsync",
	SnapshotWrite: "snapshot-write",
	Replay:        "replay",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Fault is the value an armed injection point panics with. The engine's
// recover barriers detect it with errors.As after wrapping, or by type
// assertion on the recovered value.
type Fault struct {
	// Point is the site that fired.
	Point Point
	// Call is the 1-based Hit count at which the point fired.
	Call uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (call %d)", f.Point, f.Call)
}

// Config selects a deterministic schedule.
type Config struct {
	// Seed drives the per-point firing periods. The same seed always
	// produces the same schedule.
	Seed uint64
	// MaxPeriod bounds the derived firing periods: each armed point fires
	// every 1..MaxPeriod calls (seed-chosen). 0 defaults to 64. Smaller
	// values fire more often.
	MaxPeriod uint64
	// Points, when non-empty, arms only the listed points; empty arms all.
	Points []Point
}

// state is the armed schedule; swapped in/out atomically as one value so
// Hit never sees a half-built configuration.
type state struct {
	period [NumPoints]uint64 // 0 = point disarmed
	calls  [NumPoints]atomic.Uint64
	fired  [NumPoints]atomic.Uint64
}

// armed is non-nil exactly while the harness is enabled. enabled mirrors
// (armed != nil) as a plain bool so the disarmed fast path in Hit is one
// atomic-bool load instead of a pointer load + nil check; both are
// maintained by Enable/disable only.
var (
	enabled atomic.Bool
	armed   atomic.Pointer[state]
)

// splitmix64 is the standard 64-bit mixer; one step advances the seed and
// yields one well-distributed output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Enable arms the harness with cfg's schedule and returns the disarm
// function. Enabling while already enabled replaces the schedule. Intended
// for tests only; nothing in production code calls Enable.
func Enable(cfg Config) (disable func()) {
	maxPeriod := cfg.MaxPeriod
	if maxPeriod == 0 {
		maxPeriod = 64
	}
	st := &state{}
	seed := cfg.Seed
	all := cfg.Points
	if len(all) == 0 {
		for p := Point(0); p < NumPoints; p++ {
			all = append(all, p)
		}
	}
	for _, p := range all {
		st.period[p] = 1 + splitmix64(&seed)%maxPeriod
	}
	armed.Store(st)
	enabled.Store(true)
	return func() {
		enabled.Store(false)
		armed.Store(nil)
	}
}

// Enabled reports whether the harness is armed.
func Enabled() bool { return enabled.Load() }

// Hit marks one pass through injection point p, panicking with a *Fault
// when the armed schedule fires. Disarmed it is a no-op: one atomic load
// and a branch that predicts not-taken.
func Hit(p Point) {
	if !enabled.Load() {
		return
	}
	hitArmed(p)
}

// hitArmed is the armed slow path, kept out-of-line so Hit stays under the
// compiler's inlining budget and callers pay only the atomic load + branch.
//
//go:noinline
func hitArmed(p Point) {
	st := armed.Load()
	if st == nil || st.period[p] == 0 {
		return
	}
	n := st.calls[p].Add(1)
	if n%st.period[p] == 0 {
		st.fired[p].Add(1)
		panic(&Fault{Point: p, Call: n})
	}
}

// Fired returns the number of faults fired per point since Enable, or nil
// when disarmed. Tests use it to tell "no fault fired, answers must match"
// runs from genuinely faulted ones.
func Fired() map[Point]uint64 {
	st := armed.Load()
	if st == nil {
		return nil
	}
	out := make(map[Point]uint64, NumPoints)
	for p := Point(0); p < NumPoints; p++ {
		if n := st.fired[p].Load(); n > 0 {
			out[p] = n
		}
	}
	return out
}

// TotalFired sums Fired across points (0 when disarmed).
func TotalFired() uint64 {
	st := armed.Load()
	if st == nil {
		return 0
	}
	var n uint64
	for p := Point(0); p < NumPoints; p++ {
		n += st.fired[p].Load()
	}
	return n
}
