// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the engine's failure paths. Call sites name a Point and call
// Hit at the moment the corresponding failure could occur; when the harness
// is armed (Enable) and the point's schedule says so, Hit panics with a
// *Fault, which the engine's panic-isolation barriers convert to a typed
// engine.ErrInternal. When the harness is disarmed — the production state —
// Hit is a single atomic load and a predicted branch, cheap enough to leave
// in hot paths (see BenchmarkHitDisabled).
//
// Schedules are deterministic: Enable derives a per-point firing period
// from Config.Seed with splitmix64, and each point fires on every Nth pass
// through it, counted with an atomic counter shared by all goroutines. Two
// runs that make the same sequence of Hit calls fire the same faults; under
// concurrency the set of firing call-counts is still fixed by the seed even
// though which goroutine draws the firing count is not.
//
// The point catalog covers storage (ArenaGrow, IndexProbe), parallel
// evaluation (WorkerStart), plan compilation (PlanCompile), cancellation
// (ContextCheck), the streaming executor (StreamNext), the mutation
// path (FactsApply, DeltaWave, MatRefresh) — which prove that a
// fault mid-batch rolls the base EDB back, leaves the epoch unchanged, and
// costs at most a materialization rebuild, never wrong answers — and the
// durability path (WalAppend, WalFsync, SnapshotWrite, Replay), which
// proves that exactly the acknowledged prefix of mutation batches survives
// a crash. See docs/RESILIENCE.md for the catalog and the chaos suites
// that arm it.
package faultinject
