package faultinject

import (
	"sync"
	"testing"
)

// hitCount calls Hit n times on p, recovering each fired fault, and returns
// the call numbers that fired.
func hitCount(p Point, n int) []uint64 {
	var fired []uint64
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					f, ok := r.(*Fault)
					if !ok {
						panic(r)
					}
					fired = append(fired, f.Call)
				}
			}()
			Hit(p)
		}()
	}
	return fired
}

func TestDisabledIsNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("harness enabled at test start")
	}
	for p := Point(0); p < NumPoints; p++ {
		if fired := hitCount(p, 1000); len(fired) != 0 {
			t.Errorf("%s: fired %v while disabled", p, fired)
		}
	}
	if Fired() != nil {
		t.Errorf("Fired() = %v while disabled, want nil", Fired())
	}
	if TotalFired() != 0 {
		t.Errorf("TotalFired() = %d while disabled", TotalFired())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []uint64 {
		disable := Enable(Config{Seed: seed, MaxPeriod: 16})
		defer disable()
		return hitCount(ArenaGrow, 200)
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("seed 42 fired nothing in 200 calls with MaxPeriod 16")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed fired at different calls: %v vs %v", a, b)
		}
	}
	// A different seed should (for these values) pick a different period.
	c := run(43)
	if len(c) == len(a) && len(a) > 0 && c[0] == a[0] {
		t.Logf("seeds 42 and 43 coincide on first firing (period collision); schedule still deterministic")
	}
}

func TestPointSelection(t *testing.T) {
	disable := Enable(Config{Seed: 7, MaxPeriod: 1, Points: []Point{IndexProbe}})
	defer disable()
	// MaxPeriod 1 forces period 1: every armed call fires.
	if fired := hitCount(IndexProbe, 5); len(fired) != 5 {
		t.Errorf("armed point fired %d/5", len(fired))
	}
	if fired := hitCount(ArenaGrow, 5); len(fired) != 0 {
		t.Errorf("unarmed point fired %d times", len(fired))
	}
	if got := Fired()[IndexProbe]; got != 5 {
		t.Errorf("Fired[IndexProbe] = %d, want 5", got)
	}
	if TotalFired() != 5 {
		t.Errorf("TotalFired = %d, want 5", TotalFired())
	}
}

// TestConcurrentHits checks the armed path is race-free and the total fired
// count matches the schedule under concurrency.
func TestConcurrentHits(t *testing.T) {
	disable := Enable(Config{Seed: 9, MaxPeriod: 8, Points: []Point{ContextCheck}})
	defer disable()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hitCount(ContextCheck, per)
		}()
	}
	wg.Wait()
	st := armed.Load()
	period := st.period[ContextCheck]
	want := uint64(goroutines*per) / period
	if got := Fired()[ContextCheck]; got != want {
		t.Errorf("fired %d faults over %d calls with period %d, want %d",
			got, goroutines*per, period, want)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Point: PlanCompile, Call: 3}
	want := "faultinject: injected fault at plan-compile (call 3)"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
	if Point(200).String() != "Point(200)" {
		t.Errorf("out-of-range Point String = %q", Point(200).String())
	}
}

// BenchmarkHitDisabled measures the production cost of an injection point:
// the disarmed fast path must stay around a nanosecond so Hit can live in
// storage and evaluator hot loops.
func BenchmarkHitDisabled(b *testing.B) {
	if Enabled() {
		b.Fatal("harness enabled")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hit(ArenaGrow)
	}
}

// BenchmarkHitArmedMiss measures an armed point's non-firing pass (atomic
// increment + modulo), the cost tests pay between fires.
func BenchmarkHitArmedMiss(b *testing.B) {
	disable := Enable(Config{Seed: 1, MaxPeriod: 1 << 62, Points: []Point{ArenaGrow}})
	defer disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hit(ArenaGrow)
	}
}
