package engine

import (
	"testing"
)

func TestRelationInsertContains(t *testing.T) {
	r := NewRelation(2)
	if !r.Insert([]Val{1, 2}) {
		t.Error("first insert should be new")
	}
	if r.Insert([]Val{1, 2}) {
		t.Error("duplicate insert should report false")
	}
	if !r.Contains([]Val{1, 2}) || r.Contains([]Val{2, 1}) {
		t.Error("Contains wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRelationInsertCopies(t *testing.T) {
	r := NewRelation(1)
	tup := []Val{7}
	r.Insert(tup)
	tup[0] = 9
	if !r.Contains([]Val{7}) {
		t.Error("Insert did not copy the tuple")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	NewRelation(2).Insert([]Val{1})
}

func TestRelationProbe(t *testing.T) {
	r := NewRelation(2)
	r.Insert([]Val{1, 10})
	r.Insert([]Val{1, 11})
	r.Insert([]Val{2, 20})
	pos := r.Probe([]int{0}, []Val{1})
	if len(pos) != 2 {
		t.Fatalf("probe col0=1: %d hits", len(pos))
	}
	for _, p := range pos {
		if r.Tuple(p)[0] != 1 {
			t.Errorf("wrong tuple %v", r.Tuple(p))
		}
	}
	if got := r.Probe([]int{1}, []Val{20}); len(got) != 1 || r.Tuple(got[0])[0] != 2 {
		t.Error("probe col1 wrong")
	}
	if got := r.Probe([]int{0, 1}, []Val{1, 11}); len(got) != 1 {
		t.Error("probe both cols wrong")
	}
	if got := r.Probe([]int{0}, []Val{99}); got != nil {
		t.Error("probe miss should be empty")
	}
}

func TestRelationIndexMaintainedAfterInsert(t *testing.T) {
	r := NewRelation(2)
	r.Insert([]Val{1, 10})
	_ = r.Probe([]int{0}, []Val{1}) // builds index
	r.Insert([]Val{1, 12})          // must be added to existing index
	if got := r.Probe([]int{0}, []Val{1}); len(got) != 2 {
		t.Errorf("index not maintained: %d hits", len(got))
	}
}

func TestRelationProbeUnsortedCols(t *testing.T) {
	r := NewRelation(3)
	r.Insert([]Val{1, 2, 3})
	r.Insert([]Val{4, 5, 6})
	// cols out of order: key aligned with cols as given.
	got := r.Probe([]int{2, 0}, []Val{3, 1})
	if len(got) != 1 || r.Tuple(got[0])[1] != 2 {
		t.Errorf("unsorted probe wrong: %v", got)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	a := db.Store.Const("a")
	b := db.Store.Const("b")
	if ok := db.MustInsert("e", a, b); !ok {
		t.Error("insert should be new")
	}
	if db.MustInsert("e", a, b) {
		t.Error("duplicate insert")
	}
	if db.Count("e") != 1 || db.Count("zzz") != 0 {
		t.Error("Count wrong")
	}
	if db.TotalFacts() != 1 {
		t.Error("TotalFacts wrong")
	}
	if _, err := db.Insert("e", a); err == nil {
		t.Error("arity conflict not detected")
	}
	preds := db.Preds()
	if len(preds) != 1 || preds[0] != "e" {
		t.Errorf("Preds = %v", preds)
	}
}

func TestDBClone(t *testing.T) {
	db := NewDB()
	a := db.Store.Const("a")
	db.MustInsert("p", a)
	cp := db.Clone()
	cp.MustInsert("p", db.Store.Const("b"))
	if db.Count("p") != 1 || cp.Count("p") != 2 {
		t.Error("Clone not independent")
	}
	if cp.Store != db.Store {
		t.Error("Clone should share the store")
	}
}
