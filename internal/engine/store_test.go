package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

func TestStoreInterning(t *testing.T) {
	s := NewStore()
	a1 := s.Const("a")
	a2 := s.Const("a")
	b := s.Const("b")
	if a1 != a2 {
		t.Error("same constant interned twice")
	}
	if a1 == b {
		t.Error("different constants share a Val")
	}
	f1 := s.Compound("f", a1, b)
	f2 := s.Compound("f", a1, b)
	g := s.Compound("g", a1, b)
	if f1 != f2 {
		t.Error("same compound interned twice")
	}
	if f1 == g {
		t.Error("different compounds share a Val")
	}
	if s.Size() != 4 {
		t.Errorf("Size = %d, want 4", s.Size())
	}
}

func TestStoreStructureSharing(t *testing.T) {
	// The tail of [a,b,c] and the list [b,c] must be the same Val: this is
	// the structure-sharing property Example 4.6 relies on.
	s := NewStore()
	abc := s.List(s.Const("a"), s.Const("b"), s.Const("c"))
	bc := s.List(s.Const("b"), s.Const("c"))
	if s.Args(abc)[1] != bc {
		t.Error("list tails are not shared")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	terms := []string{"a", "42", "[a,b,c]", "f(g(x),[y|[]])", "[]", "[[a],[b]]"}
	for _, src := range terms {
		tm := parser.MustParseTerm(src)
		v := s.MustFromAST(tm)
		back := s.ToAST(v)
		if !back.Equal(tm) {
			t.Errorf("round trip %q -> %s", src, back)
		}
		v2 := s.MustFromAST(back)
		if v != v2 {
			t.Errorf("re-interning %q gave different Val", src)
		}
	}
}

func TestStoreFromASTRejectsVars(t *testing.T) {
	s := NewStore()
	if _, err := s.FromAST(ast.V("X")); err == nil {
		t.Error("interning a variable should fail")
	}
	if _, err := s.FromAST(ast.Fn("f", ast.V("X"))); err == nil {
		t.Error("interning a non-ground compound should fail")
	}
}

func TestStoreStringListSugar(t *testing.T) {
	s := NewStore()
	v := s.List(s.Const("a"), s.Const("b"))
	if got := s.String(v); got != "[a,b]" {
		t.Errorf("String = %q", got)
	}
	partial := s.Cons(s.Const("a"), s.Const("tailvar"))
	if got := s.String(partial); got != "[a|tailvar]" {
		t.Errorf("partial = %q", got)
	}
	if got := s.String(s.Nil()); got != "[]" {
		t.Errorf("nil = %q", got)
	}
	f := s.Compound("f", s.Const("x"))
	if got := s.String(f); got != "f(x)" {
		t.Errorf("compound = %q", got)
	}
}

func TestStoreTupleString(t *testing.T) {
	s := NewStore()
	tup := []Val{s.Const("1"), s.List(s.Const("a"))}
	if got := s.TupleString(tup); got != "(1,[a])" {
		t.Errorf("TupleString = %q", got)
	}
}

// Property: interning is canonical — equal terms get equal Vals, distinct
// terms distinct Vals.
func TestStoreCanonicalProperty(t *testing.T) {
	s := NewStore()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		t1 := randGroundTerm(r, 3)
		t2 := randGroundTerm(r, 3)
		v1 := s.MustFromAST(t1)
		v2 := s.MustFromAST(t2)
		return (v1 == v2) == t1.Equal(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func randGroundTerm(r *rand.Rand, depth int) ast.Term {
	if depth <= 0 || r.Intn(3) == 0 {
		return ast.C([]string{"a", "b", "c"}[r.Intn(3)])
	}
	n := 1 + r.Intn(2)
	args := make([]ast.Term, n)
	for i := range args {
		args[i] = randGroundTerm(r, depth-1)
	}
	return ast.Fn([]string{"f", "g"}[r.Intn(2)], args...)
}

func TestStoreInt(t *testing.T) {
	s := NewStore()
	if s.Int(7) != s.Const("7") {
		t.Error("Int and Const disagree")
	}
}

// BenchmarkStoreInt tracks the allocation cost of interning integer
// constants. The sprintf case is the previous implementation, kept as a
// reference: fmt.Sprintf("%d", n) boxes n into an interface and allocates
// the rendered string on every call, where strconv.Itoa leaves the
// hash-consed hit path allocation-free.
func BenchmarkStoreInt(b *testing.B) {
	b.Run("itoa", func(b *testing.B) {
		s := NewStore()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Int(i % 4096)
		}
	})
	b.Run("sprintf", func(b *testing.B) {
		s := NewStore()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Const(fmt.Sprintf("%d", i%4096))
		}
	})
}
