package engine

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Relation is a set of tuples of fixed arity, with hash indexes built on
// demand for the column subsets the evaluator probes. Each tuple carries
// the fixpoint round it was inserted in (0 for base facts), which the
// semi-naive evaluator uses to distinguish P_{r-1}, the delta, and P_r
// without copying relations.
type Relation struct {
	arity    int
	present  map[string]bool   // encoded full tuple -> present
	tuples   [][]Val           // insertion order; stable iteration
	rounds   []int32           // insertion round per tuple
	indexes  map[uint32]*index // key: bitmask of indexed columns
	probeBuf []byte            // scratch for probe keys (single-threaded use)
}

type index struct {
	cols []int
	m    map[string][]int32 // encoded key cols -> tuple positions
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		arity:   arity,
		present: make(map[string]bool),
		indexes: make(map[uint32]*index),
	}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in insertion order. Callers must not modify the
// returned slices.
func (r *Relation) Tuples() [][]Val { return r.tuples }

func encodeTuple(buf []byte, tuple []Val, cols []int) []byte {
	buf = buf[:0]
	if cols == nil {
		for _, v := range tuple {
			buf = binary.AppendVarint(buf, int64(v))
		}
		return buf
	}
	for _, c := range cols {
		buf = binary.AppendVarint(buf, int64(tuple[c]))
	}
	return buf
}

// Insert adds tuple to the relation at round 0; it reports whether the
// tuple was new. The tuple slice is copied.
func (r *Relation) Insert(tuple []Val) bool { return r.InsertRound(tuple, 0) }

// InsertRound adds tuple with an explicit insertion round.
func (r *Relation) InsertRound(tuple []Val, round int32) bool {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("engine: inserting tuple of len %d into relation of arity %d", len(tuple), r.arity))
	}
	key := string(encodeTuple(nil, tuple, nil))
	if r.present[key] {
		return false
	}
	r.present[key] = true
	cp := make([]Val, len(tuple))
	copy(cp, tuple)
	pos := int32(len(r.tuples))
	r.tuples = append(r.tuples, cp)
	r.rounds = append(r.rounds, round)
	for _, idx := range r.indexes {
		k := string(encodeTuple(nil, cp, idx.cols))
		idx.m[k] = append(idx.m[k], pos)
	}
	return true
}

// Round returns the insertion round of the tuple at pos.
func (r *Relation) Round(pos int32) int32 { return r.rounds[pos] }

// Contains reports whether tuple is in the relation.
func (r *Relation) Contains(tuple []Val) bool {
	return r.present[string(encodeTuple(nil, tuple, nil))]
}

func colMask(cols []int) uint32 {
	var m uint32
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// ensureIndex builds (or returns) the index on the given columns.
func (r *Relation) ensureIndex(cols []int) *index {
	mask := colMask(cols)
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	idx := &index{cols: sorted, m: make(map[string][]int32)}
	var buf []byte
	for pos, tuple := range r.tuples {
		buf = encodeTuple(buf, tuple, sorted)
		idx.m[string(buf)] = append(idx.m[string(buf)], int32(pos))
	}
	r.indexes[mask] = idx
	return idx
}

// Probe returns the positions of tuples whose projection on cols equals
// key (a slice of Vals aligned with cols sorted ascending). An index on
// cols is built on first use. With no cols it returns all positions as nil
// (callers iterate Tuples directly); callers should not pass empty cols.
func (r *Relation) Probe(cols []int, key []Val) []int32 {
	idx := r.ensureIndex(cols)
	// Align key to the index's sorted column order.
	if len(cols) != len(idx.cols) {
		panic("engine: probe column count mismatch")
	}
	aligned := key
	if !sort.IntsAreSorted(cols) {
		aligned = make([]Val, len(key))
		perm := make([]int, len(cols))
		copy(perm, cols)
		// map column -> its key value, then emit in sorted order
		kv := make(map[int]Val, len(cols))
		for i, c := range cols {
			kv[c] = key[i]
		}
		sort.Ints(perm)
		for i, c := range perm {
			aligned[i] = kv[c]
		}
	}
	buf := r.probeBuf[:0]
	for _, v := range aligned {
		buf = binary.AppendVarint(buf, int64(v))
	}
	r.probeBuf = buf
	return idx.m[string(buf)]
}

// probeFrozen probes a prebuilt index without mutating the relation, so
// concurrent workers can share it during a round: no lazy index build, and
// the key is encoded into the caller's scratch buffer (returned for reuse)
// instead of the relation's. cols must be sorted ascending (the compiler
// emits bound columns in column order) and the index must have been built
// up front from the rule's index plan; probing an unplanned index is a
// scheduling bug and panics.
func (r *Relation) probeFrozen(cols []int, key []Val, buf []byte) ([]int32, []byte) {
	idx := r.indexes[colMask(cols)]
	if idx == nil {
		panic(fmt.Sprintf("engine: frozen probe of unplanned index %v", cols))
	}
	buf = buf[:0]
	for _, v := range key {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return idx.m[string(buf)], buf
}

// containsFrozen reports whether tuple is in the relation, encoding the key
// into the caller's scratch buffer (returned for reuse). Like probeFrozen it
// is safe for concurrent readers while the relation is frozen.
func (r *Relation) containsFrozen(tuple []Val, buf []byte) (bool, []byte) {
	buf = encodeTuple(buf, tuple, nil)
	return r.present[string(buf)], buf
}

// Tuple returns the tuple at position pos.
func (r *Relation) Tuple(pos int32) []Val { return r.tuples[pos] }

// DB maps predicate names to relations. Predicates are identified by name
// alone; using one name at two arities is an error surfaced at insert.
type DB struct {
	Store     *Store
	relations map[string]*Relation
}

// NewDB returns an empty database over a fresh store.
func NewDB() *DB { return NewDBWith(NewStore()) }

// NewDBWith returns an empty database over the given store.
func NewDBWith(store *Store) *DB {
	return &DB{Store: store, relations: make(map[string]*Relation)}
}

// Rel returns the relation for pred, creating it with the given arity on
// first use. It returns an error on arity conflicts.
func (db *DB) Rel(pred string, arity int) (*Relation, error) {
	if r, ok := db.relations[pred]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("predicate %s used with arity %d and %d", pred, r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.relations[pred] = r
	return r, nil
}

// Lookup returns the relation for pred, or nil if none exists.
func (db *DB) Lookup(pred string) *Relation { return db.relations[pred] }

// Preds returns the predicate names present, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.relations))
	for p := range db.relations {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Insert adds a fact. It reports whether the fact was new.
func (db *DB) Insert(pred string, tuple ...Val) (bool, error) {
	r, err := db.Rel(pred, len(tuple))
	if err != nil {
		return false, err
	}
	return r.Insert(tuple), nil
}

// MustInsert is Insert, panicking on arity conflict; for tests and loaders.
func (db *DB) MustInsert(pred string, tuple ...Val) bool {
	ok, err := db.Insert(pred, tuple...)
	if err != nil {
		panic(err)
	}
	return ok
}

// Count returns the number of facts for pred (0 if absent).
func (db *DB) Count(pred string) int {
	if r := db.relations[pred]; r != nil {
		return r.Len()
	}
	return 0
}

// TotalFacts returns the total number of facts across all relations.
func (db *DB) TotalFacts() int {
	n := 0
	for _, r := range db.relations {
		n += r.Len()
	}
	return n
}

// Clone returns a DB sharing the store but with independent relations.
func (db *DB) Clone() *DB {
	out := NewDBWith(db.Store)
	for pred, r := range db.relations {
		nr := NewRelation(r.arity)
		for _, t := range r.tuples {
			nr.Insert(t)
		}
		out.relations[pred] = nr
	}
	return out
}
