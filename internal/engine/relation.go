package engine

import (
	"fmt"
	"sort"

	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
)

// Relation is a set of tuples of fixed arity, with hash indexes built on
// demand for the column subsets the evaluator probes. Each tuple carries
// the fixpoint round it was inserted in (0 for base facts), which the
// semi-naive evaluator uses to distinguish P_{r-1}, the delta, and P_r
// without copying relations.
//
// Storage is a flat arena: row i occupies arena[i*arity : (i+1)*arity], so
// the whole relation is one contiguous []Val. Membership (present) and
// every column index are open-addressed hash tables over 64-bit hashes of
// the Val words, resolved against the arena on collision — no tuple is
// ever varint-encoded into a string key, and an insert allocates only when
// the arena or a table doubles. Rows are immutable once written, which
// makes every read-side operation (Tuple, Contains, Round, probeFrozen)
// safe for concurrent readers while the relation is frozen between
// mutations — the property the parallel evaluator's in-round probes rely
// on.
//
// Deletion (incremental maintenance) never moves rows: Delete removes the
// tuple from the membership table and stamps rounds[row] = -1, the dead
// sentinel. Index postings keep the dead row id — every evaluator reads a
// row only through a round window whose lower bound is ≥ 0, so dead rows
// are filtered at the same branch that implements semi-naive deltas, and
// postings buckets never need compaction. The arena slot itself is leaked
// until the next full rebuild, which is the usual arena trade.
//
// In counted mode (EnableCounts, used by Materialization) each row also
// carries a derivation count — how many immediate derivations currently
// support the fact — and the epoch it was first inserted in. Both columns
// are absent (nil) outside counted mode, so fresh-DB evaluation pays
// nothing for them.
type Relation struct {
	arity   int
	arena   []Val   // row-major tuple storage; rows never move or change
	rounds  []int32 // insertion round per row; -1 = deleted (dead sentinel)
	present tupleSet
	indexes map[uint32]*index // key: bitmask of indexed columns

	dead     int     // rows with rounds[row] < 0
	counted  bool    // counts/epochs columns maintained
	counts   []int32 // per-row derivation count (counted mode only)
	epochs   []int32 // per-row insertion epoch (counted mode only)
	curEpoch int32   // epoch stamped on subsequent inserts (counted mode)
}

// tupleSet is the open-addressed membership table: hash of the full tuple
// -> row id, with linear probing and full arena comparison on collision.
// Slots store emptySlot when never used and tombSlot after a removal;
// lookups probe past tombstones but stop at empties, so removal never
// breaks a probe chain. The stored hashes make probe misses cheap and
// growth rehash-free; growth drops tombstones.
type tupleSet struct {
	hashes []uint64
	rows   []int32
	n      int // live entries
	used   int // live entries + tombstones (growth trigger)
}

const (
	emptySlot = -1
	tombSlot  = -2
)

func (s *tupleSet) lookup(r *Relation, h uint64, tuple []Val) (int32, bool) {
	if len(s.rows) == 0 {
		return -1, false
	}
	mask := uint64(len(s.rows) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		row := s.rows[i]
		if row == emptySlot {
			return -1, false
		}
		if row == tombSlot {
			continue
		}
		if s.hashes[i] == h && r.rowEquals(row, tuple) {
			return row, true
		}
	}
}

// add places a row known to be absent, growing at 3/4 load. The first
// negative slot on the probe path is reused — a tombstone if one is
// passed, the terminating empty otherwise.
func (s *tupleSet) add(h uint64, row int32) {
	if (s.used+1)*4 > len(s.rows)*3 {
		s.grow()
	}
	mask := uint64(len(s.rows) - 1)
	i := h & mask
	for s.rows[i] >= 0 {
		i = (i + 1) & mask
	}
	if s.rows[i] == emptySlot {
		s.used++
	}
	s.hashes[i], s.rows[i] = h, row
	s.n++
}

// remove tombstones the slot holding row (found by hash + arena compare).
// It reports whether the row was present.
func (s *tupleSet) remove(r *Relation, h uint64, tuple []Val) bool {
	if len(s.rows) == 0 {
		return false
	}
	mask := uint64(len(s.rows) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		row := s.rows[i]
		if row == emptySlot {
			return false
		}
		if row == tombSlot {
			continue
		}
		if s.hashes[i] == h && r.rowEquals(row, tuple) {
			s.rows[i] = tombSlot
			s.n--
			return true
		}
	}
}

func (s *tupleSet) grow() {
	size := 2 * len(s.rows)
	if size == 0 {
		size = 16
	}
	oldHashes, oldRows := s.hashes, s.rows
	s.hashes = make([]uint64, size)
	s.rows = make([]int32, size)
	for i := range s.rows {
		s.rows[i] = emptySlot
	}
	mask := uint64(size - 1)
	for j, row := range oldRows {
		if row < 0 {
			continue
		}
		i := oldHashes[j] & mask
		for s.rows[i] >= 0 {
			i = (i + 1) & mask
		}
		s.hashes[i], s.rows[i] = oldHashes[j], row
	}
	s.used = s.n
}

// index maps the projection of a tuple onto cols to the rows sharing that
// key: an open-addressed table of key hashes whose slots name postings
// lists of row ids. Collisions compare the probe key against the bucket's
// first row in the arena.
type index struct {
	cols     []int // sorted ascending
	hashes   []uint64
	slots    []int32 // postings bucket ids; -1 = empty
	n        int     // distinct keys
	postings [][]int32
}

func (ix *index) addRow(r *Relation, row int32) {
	h := r.hashRowCols(row, ix.cols)
	if (ix.n+1)*4 > len(ix.slots)*3 {
		ix.grow()
	}
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := ix.slots[i]
		if b < 0 {
			ix.hashes[i] = h
			ix.slots[i] = int32(len(ix.postings))
			ix.postings = append(ix.postings, []int32{row})
			ix.n++
			return
		}
		if ix.hashes[i] == h && r.rowsEqualOnCols(ix.postings[b][0], row, ix.cols) {
			ix.postings[b] = append(ix.postings[b], row)
			return
		}
	}
}

func (ix *index) grow() {
	size := 2 * len(ix.slots)
	if size == 0 {
		size = 16
	}
	oldHashes, oldSlots := ix.hashes, ix.slots
	ix.hashes = make([]uint64, size)
	ix.slots = make([]int32, size)
	for i := range ix.slots {
		ix.slots[i] = -1
	}
	mask := uint64(size - 1)
	for j, b := range oldSlots {
		if b < 0 {
			continue
		}
		i := oldHashes[j] & mask
		for ix.slots[i] >= 0 {
			i = (i + 1) & mask
		}
		ix.hashes[i], ix.slots[i] = oldHashes[j], b
	}
}

// probe returns the postings of the key (aligned with ix.cols), or nil.
// It is a pure read: safe for concurrent use while the relation is frozen.
func (ix *index) probe(r *Relation, key []Val) []int32 {
	if ix.n == 0 {
		return nil
	}
	h := hashVals(key)
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := ix.slots[i]
		if b < 0 {
			return nil
		}
		if ix.hashes[i] == h && r.rowMatchesKey(ix.postings[b][0], ix.cols, key) {
			return ix.postings[b]
		}
	}
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, indexes: make(map[uint32]*index)}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of arena rows, including dead (deleted) ones.
// Scans over [0, Len) must skip positions where Round(pos) < 0; the
// evaluator's round windows do this implicitly. Use Live for the number
// of facts.
func (r *Relation) Len() int { return len(r.rounds) }

// Live returns the number of live tuples (arena rows minus deletions).
func (r *Relation) Live() int { return len(r.rounds) - r.dead }

// Tuple returns the tuple at position pos: a view into the arena, valid
// forever (rows are immutable) but not to be modified by the caller.
func (r *Relation) Tuple(pos int32) []Val {
	base := int(pos) * r.arity
	return r.arena[base : base+r.arity : base+r.arity]
}

// rowEquals reports whether the row equals tuple.
func (r *Relation) rowEquals(row int32, tuple []Val) bool {
	base := int(row) * r.arity
	for i, v := range tuple {
		if r.arena[base+i] != v {
			return false
		}
	}
	return true
}

// rowMatchesKey reports whether the row's projection on cols equals key.
func (r *Relation) rowMatchesKey(row int32, cols []int, key []Val) bool {
	base := int(row) * r.arity
	for i, c := range cols {
		if r.arena[base+c] != key[i] {
			return false
		}
	}
	return true
}

// rowsEqualOnCols reports whether two rows agree on cols.
func (r *Relation) rowsEqualOnCols(a, b int32, cols []int) bool {
	ba, bb := int(a)*r.arity, int(b)*r.arity
	for _, c := range cols {
		if r.arena[ba+c] != r.arena[bb+c] {
			return false
		}
	}
	return true
}

// Insert adds tuple to the relation at round 0; it reports whether the
// tuple was new. The tuple is copied into the arena.
func (r *Relation) Insert(tuple []Val) bool { return r.InsertRound(tuple, 0) }

// InsertRound adds tuple with an explicit insertion round.
func (r *Relation) InsertRound(tuple []Val, round int32) bool {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("engine: inserting tuple of len %d into relation of arity %d", len(tuple), r.arity))
	}
	h := hashVals(tuple)
	if _, ok := r.present.lookup(r, h, tuple); ok {
		return false
	}
	if len(r.arena)+len(tuple) > cap(r.arena) {
		// The arena is about to reallocate — the moment storage failures
		// surface. The injection point sits before any mutation, so a fired
		// fault leaves the relation consistent.
		faultinject.Hit(faultinject.ArenaGrow)
	}
	row := int32(len(r.rounds))
	r.arena = append(r.arena, tuple...)
	r.rounds = append(r.rounds, round)
	if r.counted {
		r.counts = append(r.counts, 1)
		r.epochs = append(r.epochs, r.curEpoch)
	}
	r.present.add(h, row)
	for _, ix := range r.indexes {
		ix.addRow(r, row)
	}
	return true
}

// EnableCounts switches the relation into counted mode: every row carries
// a derivation count (existing rows start at 1) and an insertion epoch.
// Used by Materialization; idempotent.
func (r *Relation) EnableCounts() {
	if r.counted {
		return
	}
	r.counted = true
	r.counts = make([]int32, len(r.rounds))
	r.epochs = make([]int32, len(r.rounds))
	for i := range r.counts {
		r.counts[i] = 1
	}
}

// Counted reports whether the relation maintains derivation counts.
func (r *Relation) Counted() bool { return r.counted }

// DerivCount returns the derivation count of the row (counted mode only).
func (r *Relation) DerivCount(pos int32) int32 { return r.counts[pos] }

// addCount adjusts the row's derivation count and returns the new value.
func (r *Relation) addCount(pos, delta int32) int32 {
	r.counts[pos] += delta
	return r.counts[pos]
}

// RowEpoch returns the epoch the row was inserted in (counted mode only).
func (r *Relation) RowEpoch(pos int32) int32 { return r.epochs[pos] }

// setEpoch sets the epoch stamped on subsequent inserts (counted mode).
func (r *Relation) setEpoch(e int32) { r.curEpoch = e }

// findRow returns the arena row holding tuple, if present (dead rows are
// not present — Delete removes them from the membership table).
func (r *Relation) findRow(tuple []Val) (int32, bool) {
	return r.present.lookup(r, hashVals(tuple), tuple)
}

// deleteRow kills a live arena row: removed from the membership table,
// stamped with the dead sentinel, count zeroed. Index postings keep the
// row id — round windows (lower bound ≥ 0) filter it on every probe.
func (r *Relation) deleteRow(row int32) {
	tuple := r.Tuple(row)
	if !r.present.remove(r, hashVals(tuple), tuple) {
		return
	}
	r.rounds[row] = -1
	if r.counted {
		r.counts[row] = 0
	}
	r.dead++
}

// Delete removes tuple from the relation, reporting whether it was
// present. The arena slot is leaked (rows never move); see the type
// comment for how dead rows stay invisible to the evaluators.
func (r *Relation) Delete(tuple []Val) bool {
	row, ok := r.findRow(tuple)
	if !ok {
		return false
	}
	r.deleteRow(row)
	return true
}

// Round returns the insertion round of the tuple at pos.
func (r *Relation) Round(pos int32) int32 { return r.rounds[pos] }

// Contains reports whether tuple is in the relation. It is a pure read:
// safe for concurrent use while the relation is frozen.
func (r *Relation) Contains(tuple []Val) bool {
	_, ok := r.present.lookup(r, hashVals(tuple), tuple)
	return ok
}

func colMask(cols []int) uint32 {
	var m uint32
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// ensureIndex builds (or returns) the index on the given columns.
func (r *Relation) ensureIndex(cols []int) *index {
	mask := colMask(cols)
	if ix, ok := r.indexes[mask]; ok {
		return ix
	}
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	ix := &index{cols: sorted}
	for row := int32(0); row < int32(r.Len()); row++ {
		ix.addRow(r, row)
	}
	r.indexes[mask] = ix
	return ix
}

// Probe returns the positions of tuples whose projection on cols equals
// key (a slice of Vals aligned with cols). An index on cols is built on
// first use; callers should not pass empty cols. Like the rest of the
// mutating surface it is single-threaded; concurrent workers use
// probeFrozen.
func (r *Relation) Probe(cols []int, key []Val) []int32 {
	faultinject.Hit(faultinject.IndexProbe)
	ix := r.ensureIndex(cols)
	if len(cols) != len(ix.cols) {
		panic("engine: probe column count mismatch")
	}
	if !sort.IntsAreSorted(cols) {
		// Rare direct-API path: align key to the index's sorted column
		// order (the compiler always emits bound columns already sorted).
		aligned := make([]Val, len(key))
		perm := append([]int(nil), cols...)
		sort.Ints(perm)
		for i, c := range perm {
			for j, oc := range cols {
				if oc == c {
					aligned[i] = key[j]
					break
				}
			}
		}
		key = aligned
	}
	return ix.probe(r, key)
}

// HasIndex reports whether an index on cols has already been built. The
// streaming executor uses it to reuse a persistent index when one exists
// and otherwise build its own transient table, so streamed strata never
// grow the relation's retained index footprint.
func (r *Relation) HasIndex(cols []int) bool {
	_, ok := r.indexes[colMask(cols)]
	return ok
}

// ProbeIndexed probes a previously built index on cols without building
// one: a pure read over frozen state, returning ok=false when no such
// index exists. cols must be sorted ascending (the compiler emits bound
// columns in column order).
func (r *Relation) ProbeIndexed(cols []int, key []Val) ([]int32, bool) {
	ix := r.indexes[colMask(cols)]
	if ix == nil {
		return nil, false
	}
	faultinject.Hit(faultinject.IndexProbe)
	return ix.probe(r, key), true
}

// probeFrozen probes a prebuilt index without mutating the relation, so
// concurrent workers can share it during a round: no lazy index build and
// no scratch state — the probe hashes the key and reads the table. cols
// must be sorted ascending (the compiler emits bound columns in column
// order) and the index must have been built up front from the rule's index
// plan; probing an unplanned index is a scheduling bug and panics.
func (r *Relation) probeFrozen(cols []int, key []Val) []int32 {
	faultinject.Hit(faultinject.IndexProbe)
	ix := r.indexes[colMask(cols)]
	if ix == nil {
		panic(fmt.Sprintf("engine: frozen probe of unplanned index %v", cols))
	}
	return ix.probe(r, key)
}

// StorageFootprint reports the relation's memory shape: arena bytes
// (tuples + round stamps), index bytes (hash slots + postings), and the
// load factors of the membership table and the indexes.
func (r *Relation) StorageFootprint() (arenaBytes, indexBytes int64, presentLoad, indexLoad float64, nIndexes int) {
	const valSize, roundSize, hashSize, slotSize = 4, 4, 8, 4
	arenaBytes = int64(cap(r.arena))*valSize + int64(cap(r.rounds))*roundSize
	arenaBytes += int64(cap(r.counts))*roundSize + int64(cap(r.epochs))*roundSize
	indexBytes = int64(cap(r.present.hashes))*hashSize + int64(cap(r.present.rows))*slotSize
	if len(r.present.rows) > 0 {
		presentLoad = float64(r.present.n) / float64(len(r.present.rows))
	}
	loadSum := 0.0
	for _, ix := range r.indexes {
		indexBytes += int64(cap(ix.hashes))*hashSize + int64(cap(ix.slots))*slotSize
		for _, p := range ix.postings {
			indexBytes += int64(cap(p)) * slotSize
		}
		if len(ix.slots) > 0 {
			loadSum += float64(ix.n) / float64(len(ix.slots))
		}
		nIndexes++
	}
	if nIndexes > 0 {
		indexLoad = loadSum / float64(nIndexes)
	}
	return arenaBytes, indexBytes, presentLoad, indexLoad, nIndexes
}

// DB maps predicate names to relations. Predicates are identified by name
// alone; using one name at two arities is an error surfaced at insert.
type DB struct {
	Store     *Store
	relations map[string]*Relation
}

// NewDB returns an empty database over a fresh store.
func NewDB() *DB { return NewDBWith(NewStore()) }

// NewDBWith returns an empty database over the given store.
func NewDBWith(store *Store) *DB {
	return &DB{Store: store, relations: make(map[string]*Relation)}
}

// Rel returns the relation for pred, creating it with the given arity on
// first use. It returns an error on arity conflicts.
func (db *DB) Rel(pred string, arity int) (*Relation, error) {
	if r, ok := db.relations[pred]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("predicate %s used with arity %d and %d", pred, r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.relations[pred] = r
	return r, nil
}

// Lookup returns the relation for pred, or nil if none exists.
func (db *DB) Lookup(pred string) *Relation { return db.relations[pred] }

// Preds returns the predicate names present, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.relations))
	for p := range db.relations {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Insert adds a fact. It reports whether the fact was new.
func (db *DB) Insert(pred string, tuple ...Val) (bool, error) {
	r, err := db.Rel(pred, len(tuple))
	if err != nil {
		return false, err
	}
	return r.Insert(tuple), nil
}

// MustInsert is Insert, panicking on arity conflict; for tests and loaders.
func (db *DB) MustInsert(pred string, tuple ...Val) bool {
	ok, err := db.Insert(pred, tuple...)
	if err != nil {
		panic(err)
	}
	return ok
}

// Count returns the number of live facts for pred (0 if absent).
func (db *DB) Count(pred string) int {
	if r := db.relations[pred]; r != nil {
		return r.Live()
	}
	return 0
}

// TotalFacts returns the total number of live facts across all relations.
func (db *DB) TotalFacts() int {
	n := 0
	for _, r := range db.relations {
		n += r.Live()
	}
	return n
}

// setEpoch sets the epoch stamped on subsequent inserts in every relation
// (counted mode); Materialization advances it per mutation batch.
func (db *DB) setEpoch(e int32) {
	for _, r := range db.relations {
		r.setEpoch(e)
	}
}

// StorageStats aggregates every relation's StorageFootprint into one
// database-wide record: total arena and index bytes, plus load factors
// averaged over non-empty tables.
func (db *DB) StorageStats() obsv.StorageStats {
	var st obsv.StorageStats
	presentSum, presentN := 0.0, 0
	indexSum, indexN := 0.0, 0
	for _, r := range db.relations {
		arenaBytes, indexBytes, presentLoad, indexLoad, nIndexes := r.StorageFootprint()
		st.Relations++
		st.Facts += r.Live()
		st.ArenaBytes += arenaBytes
		st.IndexBytes += indexBytes
		st.Indexes += nIndexes
		if r.Len() > 0 {
			presentSum += presentLoad
			presentN++
		}
		if nIndexes > 0 {
			indexSum += indexLoad
			indexN++
		}
	}
	if presentN > 0 {
		st.PresentLoad = presentSum / float64(presentN)
	}
	if indexN > 0 {
		st.IndexLoad = indexSum / float64(indexN)
	}
	return st
}

// resetRounds zeroes every live row's insertion-round stamp, turning all
// current facts into base state for a fresh fixpoint. Eval uses it before
// the sequential retry after a parallel worker panic: the stamps left by
// the aborted parallel rounds would otherwise fall outside the retry's
// semi-naive delta windows and break completeness. Dead rows keep their
// -1 sentinel — zeroing it would resurrect deleted facts.
func (db *DB) resetRounds() {
	for _, r := range db.relations {
		for i := range r.rounds {
			if r.rounds[i] >= 0 {
				r.rounds[i] = 0
			}
		}
	}
}

// Clone returns a DB sharing the store but with independent relations
// holding the live tuples (dead arena rows are not carried over).
func (db *DB) Clone() *DB {
	out := NewDBWith(db.Store)
	for pred, r := range db.relations {
		nr := NewRelation(r.arity)
		for pos := int32(0); pos < int32(r.Len()); pos++ {
			if r.rounds[pos] < 0 {
				continue
			}
			nr.Insert(r.Tuple(pos))
		}
		out.relations[pred] = nr
	}
	return out
}
