package engine

import (
	"fmt"
	"testing"
)

// Benchmarks for the relation storage layer: the semi-naive hot path is
// dominated by Insert (dedup + index maintenance) and Probe (index lookup),
// so these two are tracked with -benchmem. BENCH_3.json quotes their
// allocs/op before and after the columnar-arena rewrite.

// benchTuples returns n distinct 2-tuples with clustered first columns, so
// column-0 index postings have realistic multi-entry buckets.
func benchTuples(n int) [][]Val {
	out := make([][]Val, n)
	for i := range out {
		out[i] = []Val{Val(i / 8), Val(i)}
	}
	return out
}

func BenchmarkRelationInsert(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		tuples := benchTuples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewRelation(2)
				for _, t := range tuples {
					r.Insert(t)
				}
			}
		})
	}
}

// BenchmarkRelationInsertDup measures the duplicate-heavy regime (every
// tuple inserted twice): the second insert is a pure membership probe, the
// path the fixpoint's re-derivations hit.
func BenchmarkRelationInsertDup(b *testing.B) {
	tuples := benchTuples(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRelation(2)
		for _, t := range tuples {
			r.Insert(t)
		}
		for _, t := range tuples {
			r.Insert(t)
		}
	}
}

func BenchmarkRelationProbe(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		r := NewRelation(2)
		for _, t := range benchTuples(n) {
			r.Insert(t)
		}
		key := []Val{0}
		r.Probe([]int{0}, key) // build the index outside the loop
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				key[0] = Val(i % (n / 8))
				hits += len(r.Probe([]int{0}, key))
			}
			if hits == 0 {
				b.Fatal("probe found nothing")
			}
		})
	}
}

func BenchmarkRelationContains(b *testing.B) {
	n := 16384
	r := NewRelation(2)
	for _, t := range benchTuples(n) {
		r.Insert(t)
	}
	probe := []Val{0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		probe[0], probe[1] = Val((i%n)/8), Val(i%n)
		if r.Contains(probe) {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("contains found nothing")
	}
}
