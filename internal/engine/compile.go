package engine

import (
	"fmt"

	"factorlog/internal/ast"
)

// patKind discriminates compiled argument patterns.
type patKind uint8

const (
	patConst patKind = iota
	patVar
	patCompound
)

// pattern is a compiled term: constants are interned up front, variables are
// slot numbers into the rule's binding frame, compounds keep their shape.
type pattern struct {
	kind    patKind
	val     Val    // patConst
	slot    int    // patVar
	functor string // patCompound
	args    []pattern
}

// literalSpec is one compiled body literal.
type literalSpec struct {
	pred      string
	arity     int
	args      []pattern
	boundCols []int // columns fully bound before this literal (probe key)
	freeCols  []int // remaining columns (residually matched)
	idb       bool  // head predicate of some rule in the program
}

// indexNeed is one hash index a rule's body requires: the probe of some
// body literal with at least one bound column. The compiler declares these
// so the evaluator can build every index up front (once per stratum in the
// parallel path) instead of lazily inside Probe — removing the first-probe
// stall and making in-round probes read-only.
type indexNeed struct {
	pred string
	cols []int // sorted ascending (compiled in column order)
}

// compiledRule is an executable rule.
type compiledRule struct {
	src      ast.Rule
	idx      int // index into the program's rule list
	nslots   int
	headPred string
	headArgs []pattern
	body     []literalSpec
	idbOccs  []int // body positions whose predicate is IDB (delta positions)
	// indexNeeds lists the (relation, columns) indexes this rule's body
	// probes, one per literal with bound columns.
	indexNeeds []indexNeed
}

// label renders the rule's source for trace records.
func (r *compiledRule) label() string { return r.src.String() }

// compiler lowers an ast.Program for a given store.
type compiler struct {
	store *Store
	idb   map[string]bool
	slots map[string]int
	n     int
}

// compileProgram lowers all rules. It validates safety (every head variable
// bound by the body) and consistent arities. With reorder set, body
// literals are greedily reordered so that literals with more bound columns
// run earlier (answers are unaffected; join work often is).
func compileProgram(p *ast.Program, store *Store, reorder bool) ([]*compiledRule, error) {
	if _, err := p.PredArities(); err != nil {
		return nil, err
	}
	c := &compiler{store: store, idb: p.IDBPreds()}
	rules := make([]*compiledRule, 0, len(p.Rules))
	for i, r := range p.Rules {
		if reorder {
			r = reorderBody(r)
		}
		cr, err := c.compileRule(r, i)
		if err != nil {
			return nil, fmt.Errorf("rule %d (%s): %w", i+1, r, err)
		}
		rules = append(rules, cr)
	}
	return rules, nil
}

// reorderBody greedily picks, at each step, the body literal with the most
// arguments fully bound by the literals already placed (constants count;
// ties break toward the smallest remaining free-variable count, then
// original order). Reordering is sound for positive programs.
func reorderBody(r ast.Rule) ast.Rule {
	n := len(r.Body)
	if n < 3 {
		return r
	}
	bound := map[string]bool{}
	used := make([]bool, n)
	order := make([]int, 0, n)
	termBound := func(t ast.Term) bool {
		for _, v := range t.Vars() {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	for len(order) < n {
		best, bestBound, bestFree := -1, -1, 1<<30
		for i, a := range r.Body {
			if used[i] {
				continue
			}
			nb, nf := 0, 0
			for _, t := range a.Args {
				if termBound(t) {
					nb++
				}
			}
			for _, v := range a.Vars() {
				if !bound[v] {
					nf++
				}
			}
			if nb > bestBound || (nb == bestBound && nf < bestFree) {
				best, bestBound, bestFree = i, nb, nf
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range r.Body[best].Vars() {
			bound[v] = true
		}
	}
	body := make([]ast.Atom, n)
	for k, i := range order {
		body[k] = r.Body[i]
	}
	return ast.Rule{Head: r.Head, Body: body}
}

func (c *compiler) compileRule(r ast.Rule, idx int) (*compiledRule, error) {
	c.slots = map[string]int{}
	c.n = 0
	cr := &compiledRule{src: r, idx: idx, headPred: r.Head.Pred}

	// Compile body first so slot-bound analysis follows literal order.
	bound := make(map[int]bool)
	for bi, a := range r.Body {
		spec := literalSpec{pred: a.Pred, arity: len(a.Args), idb: c.idb[a.Pred]}
		for col, t := range a.Args {
			pat := c.compileTerm(t)
			spec.args = append(spec.args, pat)
			if patternBound(pat, bound) {
				spec.boundCols = append(spec.boundCols, col)
			} else {
				spec.freeCols = append(spec.freeCols, col)
			}
		}
		// After the literal, all its slots are bound.
		for _, pat := range spec.args {
			markBound(pat, bound)
		}
		if spec.idb {
			cr.idbOccs = append(cr.idbOccs, bi)
		}
		if len(spec.boundCols) > 0 {
			cr.indexNeeds = append(cr.indexNeeds, indexNeed{pred: spec.pred, cols: spec.boundCols})
		}
		cr.body = append(cr.body, spec)
	}

	for _, t := range r.Head.Args {
		pat := c.compileTerm(t)
		if !patternBound(pat, bound) {
			return nil, fmt.Errorf("unsafe rule: head variable(s) in %s not bound by body", t)
		}
		cr.headArgs = append(cr.headArgs, pat)
	}
	cr.nslots = c.n
	return cr, nil
}

func (c *compiler) compileTerm(t ast.Term) pattern {
	switch t.Kind {
	case ast.Var:
		slot, ok := c.slots[t.Functor]
		if !ok {
			slot = c.n
			c.n++
			c.slots[t.Functor] = slot
		}
		return pattern{kind: patVar, slot: slot}
	case ast.Const:
		return pattern{kind: patConst, val: c.store.Const(t.Functor)}
	default:
		args := make([]pattern, len(t.Args))
		for i, a := range t.Args {
			args[i] = c.compileTerm(a)
		}
		return pattern{kind: patCompound, functor: t.Functor, args: args}
	}
}

func patternBound(p pattern, bound map[int]bool) bool {
	switch p.kind {
	case patConst:
		return true
	case patVar:
		return bound[p.slot]
	default:
		for _, a := range p.args {
			if !patternBound(a, bound) {
				return false
			}
		}
		return true
	}
}

func markBound(p pattern, bound map[int]bool) {
	switch p.kind {
	case patVar:
		bound[p.slot] = true
	case patCompound:
		for _, a := range p.args {
			markBound(a, bound)
		}
	}
}

// evalPattern builds the Val denoted by a fully bound pattern.
func evalPattern(p pattern, slots []Val, store *Store) Val {
	switch p.kind {
	case patConst:
		return p.val
	case patVar:
		return slots[p.slot]
	default:
		args := make([]Val, len(p.args))
		for i, a := range p.args {
			args[i] = evalPattern(a, slots, store)
		}
		return store.Compound(p.functor, args...)
	}
}

// matchPattern matches p against v, binding unbound slots (recorded on
// trail for backtracking) and checking bound ones.
func matchPattern(p pattern, v Val, slots []Val, trail *[]int, store *Store) bool {
	switch p.kind {
	case patConst:
		return p.val == v
	case patVar:
		if slots[p.slot] == NoVal {
			slots[p.slot] = v
			*trail = append(*trail, p.slot)
			return true
		}
		return slots[p.slot] == v
	default:
		if store.IsConst(v) || store.Functor(v) != p.functor {
			return false
		}
		args := store.Args(v)
		if len(args) != len(p.args) {
			return false
		}
		for i, a := range p.args {
			if !matchPattern(a, args[i], slots, trail, store) {
				return false
			}
		}
		return true
	}
}

func undoTrail(slots []Val, trail []int, mark int) []int {
	for _, s := range trail[mark:] {
		slots[s] = NoVal
	}
	return trail[:mark]
}
