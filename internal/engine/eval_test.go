package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

// chainDB builds e(1,2), e(2,3), ..., e(n-1,n).
func chainDB(n int) *DB {
	db := NewDB()
	for i := 1; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
	}
	return db
}

func tcProgram() *ast.Program {
	return parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
}

func TestEvalTransitiveClosureChain(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		db := chainDB(10)
		res, err := Eval(tcProgram(), db, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		want := 9 * 10 / 2 // all pairs i<j over 10 nodes
		if got := db.Count("t"); got != want {
			t.Errorf("%v: |t| = %d, want %d", strat, got, want)
		}
		if res.Stats.Derived != want {
			t.Errorf("%v: Derived = %d, want %d", strat, res.Stats.Derived, want)
		}
		if res.Stats.Iterations < 2 {
			t.Errorf("%v: suspicious iteration count %d", strat, res.Stats.Iterations)
		}
	}
}

func TestEvalCycle(t *testing.T) {
	db := NewDB()
	n := 5
	for i := 0; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int((i+1)%n))
	}
	if _, err := Eval(tcProgram(), db, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.Count("t"); got != n*n {
		t.Errorf("|t| on cycle = %d, want %d", got, n*n)
	}
}

func TestSemiNaiveFewerInferencesThanNaive(t *testing.T) {
	dbS, dbN := chainDB(30), chainDB(30)
	rs, err := Eval(tcProgram(), dbS, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Eval(tcProgram(), dbN, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.Inferences >= rn.Stats.Inferences {
		t.Errorf("semi-naive (%d) should do fewer inferences than naive (%d)",
			rs.Stats.Inferences, rn.Stats.Inferences)
	}
	if dbS.Count("t") != dbN.Count("t") {
		t.Error("strategies disagree on |t|")
	}
}

func TestEvalGroundRuleFactsAndSeeds(t *testing.T) {
	// IDB facts as bodyless rules (the magic seed pattern).
	p := parser.MustParseProgram(`
		m(5).
		m(W) :- m(X), e(X, W).
	`)
	db := chainDB(8) // uses constants "1".."8"; seed 5 reaches 6,7,8
	if _, err := Eval(p, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.Count("m"); got != 4 { // 5,6,7,8
		t.Errorf("|m| = %d, want 4", got)
	}
}

func TestEvalListProgram(t *testing.T) {
	// The factored pmem program of Example 1.2 / 4.6.
	p := parser.MustParseProgram(`
		m_pmem(T) :- m_pmem([H | T]).
		fpmem(X) :- m_pmem([X | T]), p(X).
	`)
	db := NewDB()
	// Seed: m_pmem([x1..x5]), p(xi) for odd i.
	elems := make([]Val, 5)
	for i := range elems {
		elems[i] = db.Store.Const(fmt.Sprintf("x%d", i+1))
		if i%2 == 0 {
			db.MustInsert("p", elems[i])
		}
	}
	db.MustInsert("m_pmem", db.Store.List(elems...))
	if _, err := Eval(p, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.Count("fpmem"); got != 3 { // x1, x3, x5
		t.Errorf("|fpmem| = %d, want 3", got)
	}
	if got := db.Count("m_pmem"); got != 6 { // suffixes incl []
		t.Errorf("|m_pmem| = %d, want 6", got)
	}
}

func TestEvalUnsafeRule(t *testing.T) {
	p := parser.MustParseProgram(`p(X, Z) :- e(X, Y).`)
	if _, err := Eval(p, NewDB(), Options{}); err == nil {
		t.Error("unsafe rule should be rejected")
	}
}

func TestEvalArityConflict(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X) :- e(X, Y).
		q(X) :- p(X, X).
	`)
	if _, err := Eval(p, NewDB(), Options{}); err == nil {
		t.Error("arity conflict should be rejected")
	}
}

func TestEvalBudgetIterations(t *testing.T) {
	// counter(s(X)) :- counter(X) diverges; the budget must stop it.
	p := parser.MustParseProgram(`
		counter(z).
		counter(s(X)) :- counter(X).
	`)
	_, err := Eval(p, NewDB(), Options{MaxIterations: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
	_, err = Eval(p, NewDB(), Options{MaxFacts: 50})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded (facts), got %v", err)
	}
}

func TestEvalDuplicateVarsInLiteral(t *testing.T) {
	p := parser.MustParseProgram(`loop(X) :- e(X, X).`)
	db := NewDB()
	a, b := db.Store.Const("a"), db.Store.Const("b")
	db.MustInsert("e", a, a)
	db.MustInsert("e", a, b)
	if _, err := Eval(p, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Count("loop") != 1 {
		t.Errorf("|loop| = %d, want 1", db.Count("loop"))
	}
}

func TestEvalConstantsInRule(t *testing.T) {
	p := parser.MustParseProgram(`near5(Y) :- e(5, Y).`)
	db := chainDB(10)
	if _, err := Eval(p, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Count("near5") != 1 {
		t.Errorf("|near5| = %d, want 1", db.Count("near5"))
	}
}

func TestAnswers(t *testing.T) {
	db := chainDB(6)
	if _, err := Eval(tcProgram(), db, Options{}); err != nil {
		t.Fatal(err)
	}
	// t(2, Y): reaches 3,4,5,6.
	got, err := Answers(db, parser.MustParseAtom("t(2, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("answers = %d, want 4", len(got))
	}
	// Repeated variable: t(X, X) is empty on a chain.
	got, err = Answers(db, parser.MustParseAtom("t(X, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("t(X,X) = %d answers, want 0", len(got))
	}
	// Unknown predicate: no answers, no error.
	got, err = Answers(db, parser.MustParseAtom("zzz(X)"))
	if err != nil || got != nil {
		t.Errorf("unknown pred: %v %v", got, err)
	}
	// Arity mismatch is an error.
	if _, err := Answers(db, parser.MustParseAtom("t(X)")); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestAnswerSet(t *testing.T) {
	db := chainDB(4)
	if _, err := Eval(tcProgram(), db, Options{}); err != nil {
		t.Fatal(err)
	}
	set, err := AnswerSet(db, parser.MustParseAtom("t(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(1,2)", "(1,3)", "(1,4)"} {
		if !set[want] {
			t.Errorf("missing %s in %v", want, set)
		}
	}
	if len(set) != 3 {
		t.Errorf("set size = %d", len(set))
	}
}

func TestLoadFacts(t *testing.T) {
	u, err := parser.Parse(`e(1,2). e(2,3). p([a,b]).`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := LoadFacts(db, u.Facts); err != nil {
		t.Fatal(err)
	}
	if db.Count("e") != 2 || db.Count("p") != 1 {
		t.Error("LoadFacts counts wrong")
	}
	// Non-ground atom rejected.
	if err := LoadFacts(db, []ast.Atom{ast.NewAtom("q", ast.V("X"))}); err == nil {
		t.Error("non-ground fact should error")
	}
}

// Property: semi-naive and naive agree on random EDBs.
func TestStrategiesAgreeOnRandomGraphs(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		edges := make([][2]int, 0)
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		load := func() *DB {
			db := NewDB()
			for _, e := range edges {
				db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
			}
			return db
		}
		dbS, dbN := load(), load()
		if _, err := Eval(p, dbS, Options{Strategy: SemiNaive}); err != nil {
			t.Fatal(err)
		}
		if _, err := Eval(p, dbN, Options{Strategy: Naive}); err != nil {
			t.Fatal(err)
		}
		q := parser.MustParseAtom("t(X, Y)")
		sS, _ := AnswerSet(dbS, q)
		sN, _ := AnswerSet(dbN, q)
		if len(sS) != len(sN) {
			t.Fatalf("seed %d: strategies disagree: %d vs %d", seed, len(sS), len(sN))
		}
		for k := range sS {
			if !sN[k] {
				t.Fatalf("seed %d: %s missing from naive", seed, k)
			}
		}
	}
}

func TestProvenanceTrees(t *testing.T) {
	db := chainDB(5)
	p := tcProgram()
	res, err := Eval(p, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	pv := res.Prov
	if pv == nil {
		t.Fatal("no provenance recorded")
	}
	tuple := []Val{db.Store.Int(1), db.Store.Int(4)}
	id, ok := pv.Lookup("t", tuple)
	if !ok {
		t.Fatal("t(1,4) has no provenance")
	}
	if h := pv.TreeHeight(id); h < 3 {
		t.Errorf("t(1,4) tree height = %d, want >= 3", h)
	}
	if sz := pv.TreeSize(id); sz < 5 {
		t.Errorf("t(1,4) tree size = %d, want >= 5", sz)
	}
	if err := pv.Verify(db.Store, id); err != nil {
		t.Errorf("derivation tree invalid: %v", err)
	}
	out := pv.RenderTree(db.Store, id)
	if len(out) == 0 || out[0] != 't' {
		t.Errorf("render:\n%s", out)
	}
	// Every derived t fact has a valid tree.
	trel := db.Lookup("t")
	for pos := int32(0); pos < int32(trel.Len()); pos++ {
		tup := trel.Tuple(pos)
		id, ok := pv.Lookup("t", tup)
		if !ok {
			t.Fatalf("no provenance for t%s", db.Store.TupleString(tup))
		}
		if err := pv.Verify(db.Store, id); err != nil {
			t.Fatalf("t%s: %v", db.Store.TupleString(tup), err)
		}
	}
}

func TestProvenanceEDBLeaf(t *testing.T) {
	db := chainDB(3)
	res, err := Eval(tcProgram(), db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := res.Prov.Lookup("e", []Val{db.Store.Int(1), db.Store.Int(2)})
	if !ok {
		t.Skip("EDB fact not touched") // e(1,2) is used, should be present
	}
	d := res.Prov.DerivationOf(id)
	if d.Rule != -1 || len(d.Children) != 0 {
		t.Errorf("EDB fact should be a leaf: %+v", d)
	}
	if res.Prov.TreeHeight(id) != 1 {
		t.Error("leaf height should be 1")
	}
}

func TestStrategyString(t *testing.T) {
	if SemiNaive.String() != "semi-naive" || Naive.String() != "naive" {
		t.Error("Strategy.String wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}
