package engine

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// This file is the engine's panic-isolation layer. A panic anywhere in the
// evaluation hot paths — arena growth, index probes, worker joins, rule
// compilation — must fail the one evaluation that hit it, not the process
// hosting thousands of others. Every entry point into evaluator code runs
// behind a recover barrier that converts panics into a typed *PanicError
// wrapping ErrInternal, carrying the panic value and stack for the caller's
// logs. A panic inside a parallel worker additionally triggers graceful
// degradation: Eval retries the evaluation once sequentially (the parallel
// machinery — shared frozen indexes, buffer merges — is the most likely
// culprit) before giving up.

// ErrInternal is returned (wrapped by *PanicError) when evaluation or plan
// compilation panics. The process survives; the evaluation's DB is left in
// a memory-safe but incomplete state and should be discarded. Callers test
// with errors.Is and can reach the stack via errors.As(*PanicError).
var ErrInternal = errors.New("engine: internal error")

// PanicError is a recovered panic: the site that caught it, the panic
// value, and the goroutine stack at recovery. It wraps ErrInternal.
type PanicError struct {
	// Where names the recovery barrier: "compile", "eval" (sequential),
	// "parallel" (coordinator), "worker", "load", or "stream" (the
	// streaming executor, internal/stream).
	Where string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: panic in %s: %v", ErrInternal, e.Where, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrInternal }

// newPanicError captures the recovered value v at barrier where.
func newPanicError(where string, v any) *PanicError {
	return &PanicError{Where: where, Value: v, Stack: debug.Stack()}
}

// recoverTo is the deferred half of a recovery barrier: it converts an
// in-flight panic into a *PanicError stored in *err (replacing any error
// the function was about to return — the panic is strictly worse news).
func recoverTo(where string, err *error) {
	if r := recover(); r != nil {
		*err = newPanicError(where, r)
	}
}

// workerPanicked reports whether err is a recovered parallel-worker panic,
// the one failure class Eval degrades to sequential evaluation for.
func workerPanicked(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) && pe.Where == "worker"
}
