package engine

import (
	"context"
	"errors"
	"testing"

	"factorlog/internal/ast"
)

const commitHookSrc = `
	t(X,Y) :- e(X,Y).
	t(X,Y) :- e(X,W), t(W,Y).
	e(1,2). e(2,3).
	?- t(X,Y).`

func atomSet(atoms []ast.Atom) map[string]bool {
	out := map[string]bool{}
	for _, a := range atoms {
		out[a.String()] = true
	}
	return out
}

// TestCommitHookObservesEffectiveBatch pins the hook contract: it sees the
// epoch the batch commits as and exactly the effective changes (noop
// entries stripped), and a no-op batch never reaches it.
func TestCommitHookObservesEffectiveBatch(t *testing.T) {
	u := mustUnit(t, commitHookSrc)
	type call struct {
		epoch           int64
		assert, retract map[string]bool
	}
	var calls []call
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{
		CommitHook: func(epoch int64, assert, retract []ast.Atom) error {
			calls = append(calls, call{epoch, atomSet(assert), atomSet(retract)})
			return nil
		},
	})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ctx := context.Background()

	// Mixed batch: one effective assert, one noop assert, one effective
	// retract, one noop retract.
	_, err = m.Apply(ctx,
		[]ast.Atom{atom(t, "e(3,4)"), atom(t, "e(1,2)")},
		[]ast.Atom{atom(t, "e(2,3)"), atom(t, "e(9,9)")})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(calls) != 1 {
		t.Fatalf("hook ran %d times, want 1", len(calls))
	}
	c := calls[0]
	if c.epoch != 1 {
		t.Errorf("hook saw epoch %d, want 1", c.epoch)
	}
	if len(c.assert) != 1 || !c.assert[atom(t, "e(3,4)").String()] {
		t.Errorf("hook asserts = %v, want only e(3,4)", c.assert)
	}
	if len(c.retract) != 1 || !c.retract[atom(t, "e(2,3)").String()] {
		t.Errorf("hook retracts = %v, want only e(2,3)", c.retract)
	}

	// A pure-noop batch advances the epoch but has nothing to log.
	if _, err := m.Apply(ctx, []ast.Atom{atom(t, "e(1,2)")}, nil); err != nil {
		t.Fatalf("noop apply: %v", err)
	}
	if len(calls) != 1 {
		t.Fatalf("noop batch reached the hook: %d calls", len(calls))
	}
}

// TestCommitHookErrorRollsBack proves a refused commit behaves exactly like
// a mid-batch failure: base restored, epoch unchanged, and the next apply
// rebuilds to correct answers.
func TestCommitHookErrorRollsBack(t *testing.T) {
	u := mustUnit(t, commitHookSrc)
	refuse := errors.New("durable log unavailable")
	fail := false
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{
		CommitHook: func(int64, []ast.Atom, []ast.Atom) error {
			if fail {
				return refuse
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ctx := context.Background()
	want := dumpLive(m.DB())

	fail = true
	if _, err := m.Apply(ctx, []ast.Atom{atom(t, "e(3,4)")}, nil); !errors.Is(err, refuse) {
		t.Fatalf("apply with refusing hook: %v, want the hook error", err)
	}
	if got := m.Epoch(); got != 0 {
		t.Fatalf("epoch %d after refused commit, want 0", got)
	}
	if !m.Dirty() {
		t.Fatal("refused commit did not poison the materialization")
	}

	// Retrying with the hook healthy commits the same epoch and yields the
	// answers an uninterrupted run would have.
	fail = false
	if _, err := m.Apply(ctx, nil, nil); err != nil {
		t.Fatalf("recovery apply: %v", err)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("epoch %d after recovery, want 1", got)
	}
	diffDump(t, "post-rollback", want, dumpLive(m.DB()))
}
