package engine

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
)

// FactID identifies a fact (predicate + tuple) within one Provenance.
type FactID int32

// Derivation records how a fact was first derived: the program rule applied
// and the facts matched by the rule body, in body-literal order. EDB facts
// have Rule == -1 and no Children.
type Derivation struct {
	Rule     int
	Children []FactID
}

// Provenance records one derivation per derived fact, realizing the
// derivation trees of Definition 2.1: a fact is in the least fixpoint iff
// it has a derivation tree, and the recorded structure is exactly such a
// tree (the first one found).
type Provenance struct {
	program *ast.Program
	table   factTable
	preds   []string
	tuples  [][]Val
	derivs  []Derivation
}

// factTable maps (pred, tuple) identities to FactIDs: an open-addressed
// table over hashPredTuple hashes whose slots store id+1 (0 = empty).
// Collisions compare the predicate and tuple against the recorded fact —
// the old pred + "\x00" + encoded-tuple string keys are gone.
type factTable struct {
	hashes []uint64
	ids    []int32
	n      int
}

func (t *factTable) lookup(pv *Provenance, h uint64, pred string, tuple []Val) (FactID, bool) {
	if len(t.ids) == 0 {
		return 0, false
	}
	mask := uint64(len(t.ids) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		slot := t.ids[i]
		if slot == 0 {
			return 0, false
		}
		if t.hashes[i] == h {
			id := FactID(slot - 1)
			if pv.preds[id] == pred && valsEqual(pv.tuples[id], tuple) {
				return id, true
			}
		}
	}
}

// add records id for a fact the caller verified is absent.
func (t *factTable) add(h uint64, id FactID) {
	if (t.n+1)*4 > len(t.ids)*3 {
		t.grow()
	}
	mask := uint64(len(t.ids) - 1)
	i := h & mask
	for t.ids[i] != 0 {
		i = (i + 1) & mask
	}
	t.hashes[i], t.ids[i] = h, int32(id)+1
	t.n++
}

func (t *factTable) grow() {
	size := 2 * len(t.ids)
	if size == 0 {
		size = 64
	}
	oldHashes, oldIDs := t.hashes, t.ids
	t.hashes = make([]uint64, size)
	t.ids = make([]int32, size)
	mask := uint64(size - 1)
	for j, slot := range oldIDs {
		if slot == 0 {
			continue
		}
		i := oldHashes[j] & mask
		for t.ids[i] != 0 {
			i = (i + 1) & mask
		}
		t.hashes[i], t.ids[i] = oldHashes[j], slot
	}
}

func valsEqual(a, b []Val) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// NewProvenance returns an empty provenance recorder for program p.
func NewProvenance(p *ast.Program) *Provenance {
	return &Provenance{program: p}
}

func (pv *Provenance) factID(pred string, tuple []Val) FactID {
	h := hashPredTuple(pred, tuple)
	if id, ok := pv.table.lookup(pv, h, pred, tuple); ok {
		return id
	}
	id := FactID(len(pv.preds))
	pv.preds = append(pv.preds, pred)
	cp := make([]Val, len(tuple))
	copy(cp, tuple)
	pv.tuples = append(pv.tuples, cp)
	pv.derivs = append(pv.derivs, Derivation{Rule: -1})
	pv.table.add(h, id)
	return id
}

func (pv *Provenance) record(r *compiledRule, tuple []Val, children []FactID) {
	id := pv.factID(r.headPred, tuple)
	if pv.derivs[id].Rule != -1 || len(pv.derivs[id].Children) > 0 {
		return // keep the first derivation
	}
	cp := make([]FactID, len(children))
	copy(cp, children)
	pv.derivs[id] = Derivation{Rule: r.idx, Children: cp}
}

// Lookup returns the FactID for a fact if it was recorded.
func (pv *Provenance) Lookup(pred string, tuple []Val) (FactID, bool) {
	return pv.table.lookup(pv, hashPredTuple(pred, tuple), pred, tuple)
}

// Fact returns the predicate and tuple of id.
func (pv *Provenance) Fact(id FactID) (string, []Val) {
	return pv.preds[id], pv.tuples[id]
}

// DerivationOf returns the recorded derivation of id. Rule == -1 means the
// fact is a leaf (EDB fact or pre-seeded).
func (pv *Provenance) DerivationOf(id FactID) Derivation { return pv.derivs[id] }

// TreeHeight returns the height of the derivation tree rooted at id, with
// leaves at height 1 (as in the inductive proofs of Theorems 4.1-4.3).
func (pv *Provenance) TreeHeight(id FactID) int {
	d := pv.derivs[id]
	if d.Rule < 0 {
		return 1
	}
	h := 0
	for _, c := range d.Children {
		if ch := pv.TreeHeight(c); ch > h {
			h = ch
		}
	}
	return h + 1
}

// TreeSize returns the number of nodes in the derivation tree rooted at id.
func (pv *Provenance) TreeSize(id FactID) int {
	d := pv.derivs[id]
	n := 1
	for _, c := range d.Children {
		n += pv.TreeSize(c)
	}
	return n
}

// RenderTree renders the derivation tree rooted at id, one node per line,
// indented by depth, with the applied rule after each derived node:
//
//	t(1,3)  [rule 2]
//	  e(1,2)
//	  t(2,3)  [rule 4]
//	    e(2,3)
func (pv *Provenance) RenderTree(store *Store, id FactID) string {
	var b strings.Builder
	pv.render(&b, store, id, 0)
	return b.String()
}

func (pv *Provenance) render(b *strings.Builder, store *Store, id FactID, depth int) {
	pred, tuple := pv.Fact(id)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(pred)
	b.WriteString(store.TupleString(tuple))
	d := pv.derivs[id]
	if d.Rule >= 0 {
		fmt.Fprintf(b, "  [rule %d]", d.Rule+1)
	}
	b.WriteByte('\n')
	for _, c := range d.Children {
		pv.render(b, store, c, depth+1)
	}
}

// Verify checks that the recorded derivation of id is locally consistent:
// the rule's head matches the fact and the children match the rule's body
// literals under a single substitution. It recurses through the whole tree
// and returns the first inconsistency found.
func (pv *Provenance) Verify(store *Store, id FactID) error {
	d := pv.derivs[id]
	if d.Rule < 0 {
		return nil
	}
	if d.Rule >= len(pv.program.Rules) {
		return fmt.Errorf("fact %d refers to rule %d of %d", id, d.Rule, len(pv.program.Rules))
	}
	rule := pv.program.Rules[d.Rule]
	if len(d.Children) != len(rule.Body) {
		return fmt.Errorf("fact %d: %d children for %d body literals", id, len(d.Children), len(rule.Body))
	}
	pred, tuple := pv.Fact(id)
	if pred != rule.Head.Pred {
		return fmt.Errorf("fact %d: predicate %s derived by rule for %s", id, pred, rule.Head.Pred)
	}
	s := ast.Subst{}
	ok := true
	bind := func(pat ast.Term, v Val) {
		if !ok {
			return
		}
		got, match := ast.Match(pat, store.ToAST(v), s)
		if !match {
			ok = false
			return
		}
		s = got
	}
	for i, t := range rule.Head.Args {
		bind(t, tuple[i])
	}
	for ci, cid := range d.Children {
		cpred, ctuple := pv.Fact(cid)
		if cpred != rule.Body[ci].Pred {
			return fmt.Errorf("fact %d: child %d is %s, rule expects %s", id, ci, cpred, rule.Body[ci].Pred)
		}
		for i, t := range rule.Body[ci].Args {
			bind(t, ctuple[i])
		}
	}
	if !ok {
		return fmt.Errorf("fact %d: rule %d instance does not unify with children", id, d.Rule+1)
	}
	for _, cid := range d.Children {
		if err := pv.Verify(store, cid); err != nil {
			return err
		}
	}
	return nil
}
