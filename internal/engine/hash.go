package engine

// Tuple hashing for the arena-backed relation storage. Keys are sequences
// of Val words (int32 handles into the hash-consed Store), hashed with
// FNV-1a over the words and finished with a 64-bit avalanche so the low
// bits — the only ones the power-of-two tables use — depend on every word.
// No strings or byte buffers are materialized anywhere on this path; on a
// hash collision callers compare the candidate row against the arena
// directly.

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// mix64 is the splitmix64 finalizer: a full-avalanche permutation of the
// accumulated FNV state.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashVals hashes a key given as a Val slice.
func hashVals(key []Val) uint64 {
	h := uint64(fnvOffset)
	for _, v := range key {
		h = (h ^ uint64(uint32(v))) * fnvPrime
	}
	return mix64(h)
}

// hashRowCols hashes the projection of an arena row onto cols, word for
// word identical to hashVals over the projected key — the two must agree
// for index probes to find rows inserted via addRow.
func (r *Relation) hashRowCols(row int32, cols []int) uint64 {
	base := int(row) * r.arity
	h := uint64(fnvOffset)
	for _, c := range cols {
		h = (h ^ uint64(uint32(r.arena[base+c]))) * fnvPrime
	}
	return mix64(h)
}

// hashPredTuple hashes a (predicate, tuple) pair: the fact identity used by
// provenance and the parallel workers' same-round dedup, replacing the old
// pred + "\x00" + varint-encoded string keys.
func hashPredTuple(pred string, tuple []Val) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(pred); i++ {
		h = (h ^ uint64(pred[i])) * fnvPrime
	}
	h = (h ^ 0xff) * fnvPrime // separates the name from the value words
	for _, v := range tuple {
		h = (h ^ uint64(uint32(v))) * fnvPrime
	}
	return mix64(h)
}
