package engine

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
)

// This file is the exported face of the rule compiler. The compiled forms
// themselves (compiledRule, literalSpec, pattern, indexNeed) stay unexported
// so the evaluator's internals remain free to change, but the streaming
// executor (internal/stream) consumes the same compiled plans the fixpoint
// evaluators run — same slot numbering, same bound/free column split, same
// index needs — so the two executors can never drift apart on what a rule
// means. The aliases below re-export the types and the methods re-export
// the operations stream needs: pattern evaluation and matching against the
// hash-consed store, and the compiled shape of each body literal.

// CompiledRule is an executable rule: the compiler's lowering of one
// ast.Rule, shared by the fixpoint evaluators and the streaming executor.
type CompiledRule = compiledRule

// LiteralSpec is one compiled body literal of a CompiledRule.
type LiteralSpec = literalSpec

// Pattern is a compiled term: an interned constant, a slot number into the
// rule's binding frame, or a compound shape over sub-patterns.
type Pattern = pattern

// IndexNeed is one (relation, columns) hash index a rule's body probes.
type IndexNeed = indexNeed

// CompileProgram lowers every rule of p against store, validating safety
// and arity consistency. With reorder set, body literals are greedily
// reordered most-bound-first (see Options.ReorderJoins). Like Eval's
// compile step it runs behind a recover barrier: a compiler panic returns a
// *PanicError wrapping ErrInternal.
func CompileProgram(p *ast.Program, store *Store, reorder bool) ([]*CompiledRule, error) {
	return compileRulesGuarded(p, store, reorder)
}

// Rule returns the source rule this plan was compiled from (post-reorder
// when the compiler reordered the body, so body positions align with Body).
func (r *compiledRule) Rule() ast.Rule { return r.src }

// RuleIndex returns the rule's position in the compiled program.
func (r *compiledRule) RuleIndex() int { return r.idx }

// NSlots returns the size of the rule's binding frame.
func (r *compiledRule) NSlots() int { return r.nslots }

// HeadPred returns the head predicate name.
func (r *compiledRule) HeadPred() string { return r.headPred }

// HeadArgs returns the compiled head argument patterns.
func (r *compiledRule) HeadArgs() []Pattern { return r.headArgs }

// Body returns the compiled body literals in evaluation order.
func (r *compiledRule) Body() []LiteralSpec { return r.body }

// IndexNeeds returns the (relation, columns) indexes the body probes.
func (r *compiledRule) IndexNeeds() []IndexNeed { return r.indexNeeds }

// Label renders the rule's source for trace records and plan displays.
func (r *compiledRule) Label() string { return r.label() }

// Pred returns the literal's predicate name.
func (l *literalSpec) Pred() string { return l.pred }

// Arity returns the literal's argument count.
func (l *literalSpec) Arity() int { return l.arity }

// Args returns the literal's compiled argument patterns.
func (l *literalSpec) Args() []Pattern { return l.args }

// BoundCols returns the columns fully bound before this literal runs — the
// probe key the evaluator pushes into an index lookup. Sorted ascending.
func (l *literalSpec) BoundCols() []int { return l.boundCols }

// FreeCols returns the columns matched residually against each candidate.
func (l *literalSpec) FreeCols() []int { return l.freeCols }

// IsIDB reports whether the literal's predicate is a rule head somewhere in
// the compiled program.
func (l *literalSpec) IsIDB() bool { return l.idb }

// Pred returns the indexed relation's predicate name.
func (n indexNeed) Pred() string { return n.pred }

// Cols returns the indexed columns, sorted ascending.
func (n indexNeed) Cols() []int { return n.cols }

// IsConst reports whether the pattern is an interned constant and returns
// its value.
func (p Pattern) IsConst() (Val, bool) { return p.val, p.kind == patConst }

// VarSlot reports whether the pattern is a variable and returns its slot.
func (p Pattern) VarSlot() (int, bool) { return p.slot, p.kind == patVar }

// Eval builds the Val a fully bound pattern denotes under slots.
func (p Pattern) Eval(slots []Val, store *Store) Val {
	return evalPattern(p, slots, store)
}

// Match matches the pattern against v, binding unbound slots (recorded on
// trail for UndoTrail) and checking bound ones.
func (p Pattern) Match(v Val, slots []Val, trail *[]int, store *Store) bool {
	return matchPattern(p, v, slots, trail, store)
}

// Render prints the pattern for plan displays: constants by their interned
// name, variables as $slot, compounds structurally.
func (p Pattern) Render(store *Store) string {
	switch p.kind {
	case patConst:
		return store.String(p.val)
	case patVar:
		return fmt.Sprintf("$%d", p.slot)
	default:
		parts := make([]string, len(p.args))
		for i, a := range p.args {
			parts[i] = a.Render(store)
		}
		return p.functor + "(" + strings.Join(parts, ",") + ")"
	}
}

// UndoTrail unbinds the slots recorded on trail past mark and returns the
// truncated trail; the undo half of Pattern.Match.
func UndoTrail(slots []Val, trail []int, mark int) []int {
	return undoTrail(slots, trail, mark)
}

// HashVals hashes a tuple or probe key of Val words — the same hash the
// relation's membership table and column indexes use, exported so the
// streaming executor's transient build tables agree with the arenas.
func HashVals(key []Val) uint64 { return hashVals(key) }
