package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// tcAnswerSet evaluates tcProgram over chainDB(n) and returns t's answer
// set rendered as strings, or the evaluation error.
func tcAnswerSet(n int, opts Options) (map[string]bool, error) {
	db := chainDB(n)
	if _, err := Eval(tcProgram(), db, opts); err != nil {
		return nil, err
	}
	q, err := parser.ParseAtom("t(X, Y)")
	if err != nil {
		return nil, err
	}
	return AnswerSet(db, q)
}

// sameSet reports whether two answer sets agree.
func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestPanicIsolationSequential arms every sequential-path injection point
// at the highest rate and checks that evaluation fails with a typed
// ErrInternal carrying the stack — never a process-killing panic.
func TestPanicIsolationSequential(t *testing.T) {
	for _, point := range []faultinject.Point{
		faultinject.ArenaGrow, faultinject.IndexProbe, faultinject.ContextCheck,
	} {
		t.Run(point.String(), func(t *testing.T) {
			// Build the EDB before arming: fact loading is not behind a
			// recover barrier (it is the caller's setup code, not an
			// evaluation).
			db := chainDB(10)
			disable := faultinject.Enable(faultinject.Config{
				Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{point},
			})
			defer disable()
			_, err := Eval(tcProgram(), db, Options{})
			if err == nil {
				t.Fatalf("%s armed every call but evaluation succeeded", point)
			}
			if !errors.Is(err, ErrInternal) {
				t.Fatalf("err = %v, want ErrInternal", err)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err %v does not unwrap to *PanicError", err)
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError carries no stack")
			}
			if f, ok := pe.Value.(*faultinject.Fault); !ok || f.Point != point {
				t.Errorf("panic value = %#v, want *Fault at %s", pe.Value, point)
			}
		})
	}
}

// TestCompileGuardConvertsPanics drives the compile barrier directly: the
// recover half must turn a panic into a typed error at the named site.
func TestCompileGuardConvertsPanics(t *testing.T) {
	rules, err := compileRulesGuarded(tcProgram(), NewStore(), false)
	if err != nil || len(rules) != 2 {
		t.Fatalf("clean compile: rules=%d err=%v", len(rules), err)
	}
	perr := func() (err error) {
		defer recoverTo("compile", &err)
		panic("compiler invariant broken")
	}()
	var pe *PanicError
	if !errors.As(perr, &pe) || pe.Where != "compile" {
		t.Fatalf("barrier produced %v, want *PanicError at compile", perr)
	}
}

// TestWorkerPanicDegradesToSequential arms the worker-start point so every
// parallel worker dies immediately, and checks that Eval still produces
// the complete, correct answer set via the sequential retry, flagged
// Degraded.
func TestWorkerPanicDegradesToSequential(t *testing.T) {
	const n = 12
	want, err := tcAnswerSet(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.WorkerStart},
	})
	defer disable()
	for _, workers := range []int{2, 4, 8} {
		db := chainDB(n)
		res, err := Eval(tcProgram(), db, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: degraded eval failed: %v", workers, err)
		}
		if !res.Stats.Degraded {
			t.Errorf("workers=%d: Stats.Degraded = false after worker panics", workers)
		}
		q, _ := parser.ParseAtom("t(X, Y)")
		got, err := AnswerSet(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSet(got, want) {
			t.Errorf("workers=%d: degraded answers differ: %d vs %d", workers, len(got), len(want))
		}
	}
	if fired := faultinject.Fired()[faultinject.WorkerStart]; fired == 0 {
		t.Error("worker-start point never fired")
	}
}

// TestWorkerPanicMidEvaluationDegrades fires inside the parallel join path
// (index probes) instead of at worker start, so the panic lands after some
// rounds have already merged; the sequential retry must still complete the
// fixpoint from that partial state.
func TestWorkerPanicMidEvaluationDegrades(t *testing.T) {
	const n = 24
	want, err := tcAnswerSet(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	disable := faultinject.Enable(faultinject.Config{
		// A generous period lets a few rounds merge before the fault lands.
		Seed: 7, MaxPeriod: 500, Points: []faultinject.Point{faultinject.IndexProbe},
	})
	defer disable()
	db := chainDB(n)
	res, err := Eval(tcProgram(), db, Options{Workers: 4})
	if err != nil {
		// The sequential retry also probes indexes, so with an armed
		// index-probe point the retry itself may fault; that must still be
		// a typed internal error, not a crash.
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("err = %v, want ErrInternal", err)
		}
		return
	}
	if !res.Stats.Degraded {
		t.Skip("fault did not land in a worker this schedule; nothing to assert")
	}
	q, _ := parser.ParseAtom("t(X, Y)")
	got, aerr := AnswerSet(db, q)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !sameSet(got, want) {
		t.Errorf("degraded answers differ: %d vs %d", len(got), len(want))
	}
}

// TestMemoryBudget checks ErrMemoryBudget fires on both evaluators when
// the storage footprint exceeds MaxBytes, and that a generous budget does
// not interfere.
func TestMemoryBudget(t *testing.T) {
	for _, workers := range []int{1, 4} {
		name := fmt.Sprintf("workers=%d", workers)
		t.Run(name, func(t *testing.T) {
			// chainDB(64) closes to 2016 t-facts: comfortably over 1 KiB of
			// arena, so a tiny budget must trip.
			db := chainDB(64)
			_, err := Eval(tcProgram(), db, Options{Workers: workers, MaxBytes: 1024})
			if !errors.Is(err, ErrMemoryBudget) {
				t.Fatalf("tiny budget: err = %v, want ErrMemoryBudget", err)
			}
			if !strings.Contains(err.Error(), "MaxBytes") {
				t.Errorf("budget error %q does not name the option", err)
			}
			// The typed memory error is distinct from the fact/iteration
			// budget family.
			if errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("ErrMemoryBudget must not alias ErrBudgetExceeded")
			}

			db = chainDB(64)
			if _, err := Eval(tcProgram(), db, Options{Workers: workers, MaxBytes: 64 << 20}); err != nil {
				t.Fatalf("generous budget: %v", err)
			}
		})
	}
}

// TestMemoryBudgetValidation rejects negative MaxBytes up front.
func TestMemoryBudgetValidation(t *testing.T) {
	_, err := Eval(tcProgram(), chainDB(4), Options{MaxBytes: -1})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("MaxBytes=-1: err = %v, want ErrBadOptions", err)
	}
}

// TestInjectionDisabledDifferential pins the no-fault invariant the chaos
// suite relies on: with the harness disarmed, evaluations over the
// instrumented paths produce identical answers to each other across worker
// counts.
func TestInjectionDisabledDifferential(t *testing.T) {
	if faultinject.Enabled() {
		t.Fatal("harness armed at test start")
	}
	want, err := tcAnswerSet(16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := tcAnswerSet(16, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameSet(got, want) {
			t.Errorf("workers=%d: answers differ from sequential", workers)
		}
	}
}

// TestPanicErrorRendering pins the error text callers log.
func TestPanicErrorRendering(t *testing.T) {
	pe := newPanicError("worker", "boom")
	if !errors.Is(pe, ErrInternal) {
		t.Error("PanicError does not wrap ErrInternal")
	}
	if want := "engine: internal error: panic in worker: boom"; pe.Error() != want {
		t.Errorf("Error() = %q, want %q", pe.Error(), want)
	}
	if !workerPanicked(fmt.Errorf("wrapped: %w", pe)) {
		t.Error("workerPanicked misses wrapped worker panics")
	}
	if workerPanicked(newPanicError("eval", "boom")) {
		t.Error("workerPanicked claims non-worker panics")
	}
}
