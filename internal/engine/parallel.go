package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/depgraph"
	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
	"factorlog/internal/trace"
)

// This file implements parallel stratified evaluation (Options.Workers > 1):
//
//  1. The program's predicate dependency graph is condensed into SCCs and
//     scheduled as a topologically ordered list of strata (internal/depgraph).
//     Non-recursive strata are evaluated in a single pass; recursive strata
//     run a local semi-naive fixpoint. Predicates from earlier strata are
//     complete by the time a stratum starts, so their occurrences are
//     unrestricted (no delta bookkeeping) — only same-stratum occurrences
//     participate in the delta discipline.
//
//  2. Within a round, rule x delta-occurrence passes are split into shards
//     of the first body literal's positions and fanned out over a worker
//     pool. Relations are frozen during a round: workers probe prebuilt
//     indexes read-only and derive into private buffers, which the
//     coordinator merges (deduplicating through Relation.InsertRound) at
//     the round barrier. The hash-consed Store handles any concurrent
//     interning of compound head terms.
//
//  3. Every index a stratum's rules declare (compiledRule.indexNeeds) is
//     built before the stratum's first round, so in-round probes never
//     mutate shared state.
//
// The final answer set and Stats.Derived are identical to the sequential
// evaluator's — both compute the same least fixpoint — but Iterations
// counts per-stratum rounds and relation insertion order depends on worker
// interleaving.

// workUnit is one schedulable piece of a round: one evaluation pass of one
// rule (with its delta occurrence) restricted to one shard of the first
// body literal's positions.
type workUnit struct {
	rule     *compiledRule
	occs     []int // stratum-local delta positions (subset of idbOccs)
	deltaOcc int   // -1 for seed passes
	shardRem int32
	shardMod int32 // 1 = unsharded
}

// bufFact is one derivation buffered by a worker until the round barrier:
// the rule that fired and the offset of the head tuple in the worker's
// buffer arena (its length is the rule's head arity).
type bufFact struct {
	rule *compiledRule
	off  int32
}

// errEvalStopped aborts a worker's in-progress join when the evaluation's
// context is canceled; it never escapes the engine (the coordinator reports
// the context's typed error instead).
var errEvalStopped = errors.New("engine: evaluation stopped")

// factSet is the worker-local same-round dedup: an open-addressed table
// over hashPredTuple hashes whose slots name buffered facts (index+1; 0 =
// empty, so a round reset is one memclr). Collisions compare predicate and
// tuple against the worker's buffer arena — no string keys.
type factSet struct {
	hashes []uint64
	ids    []int32
	n      int
}

func (s *factSet) contains(pw *parWorker, h uint64, pred string, tuple []Val) bool {
	if len(s.ids) == 0 {
		return false
	}
	mask := uint64(len(s.ids) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		id := s.ids[i]
		if id == 0 {
			return false
		}
		if s.hashes[i] == h && pw.factEquals(pw.facts[id-1], pred, tuple) {
			return true
		}
	}
}

// add records fact index id-1 as seen; the caller ensured it is absent.
func (s *factSet) add(h uint64, id int32) {
	if (s.n+1)*4 > len(s.ids)*3 {
		s.grow()
	}
	mask := uint64(len(s.ids) - 1)
	i := h & mask
	for s.ids[i] != 0 {
		i = (i + 1) & mask
	}
	s.hashes[i], s.ids[i] = h, id
	s.n++
}

func (s *factSet) grow() {
	size := 2 * len(s.ids)
	if size == 0 {
		size = 64
	}
	oldHashes, oldIDs := s.hashes, s.ids
	s.hashes = make([]uint64, size)
	s.ids = make([]int32, size)
	mask := uint64(size - 1)
	for j, id := range oldIDs {
		if id == 0 {
			continue
		}
		i := oldHashes[j] & mask
		for s.ids[i] != 0 {
			i = (i + 1) & mask
		}
		s.hashes[i], s.ids[i] = oldHashes[j], id
	}
}

// reset clears the set in one memclr, keeping its capacity for the next
// round (stale hashes are never read behind an empty slot).
func (s *factSet) reset() {
	clear(s.ids)
	s.n = 0
}

// parWorker is one worker's private state, reused across rounds and — via
// parWorkerPool — across evaluations.
type parWorker struct {
	rn         runner
	facts      []bufFact
	arena      []Val // buffered head tuples, row-major per facts entry
	dedup      factSet
	inferences int
	rules      []obsv.RuleStats // per-rule counters; nil unless traced
	stats      obsv.WorkerStats
	// stop, when non-nil, is the evaluation's cancellation flag; the sink
	// polls it so a worker abandons its current work unit mid-join instead
	// of running the unit to completion after the context is gone.
	stop *atomic.Bool
}

// parWorkerPool recycles worker state (buffer arenas, dedup tables, the
// runner's slot/key/head scratch) across evaluations, so a long-lived
// server's parallel queries stop paying warm-up allocations. Buffers are
// recycled within an evaluation at every barrier merge and returned to the
// pool when the evaluation ends.
var parWorkerPool = sync.Pool{New: func() any { return new(parWorker) }}

// tuple returns the buffered head tuple of bf as a view into the arena.
func (pw *parWorker) tuple(bf bufFact) []Val {
	return pw.arena[bf.off : int(bf.off)+len(bf.rule.headArgs)]
}

// factEquals reports whether bf is the fact (pred, tuple).
func (pw *parWorker) factEquals(bf bufFact, pred string, tuple []Val) bool {
	if bf.rule.headPred != pred || len(bf.rule.headArgs) != len(tuple) {
		return false
	}
	for i, v := range pw.tuple(bf) {
		if v != tuple[i] {
			return false
		}
	}
	return true
}

// release returns the worker to the pool, dropping every reference into
// the evaluation (db, rules, sinks) while keeping the scratch capacity.
func (pw *parWorker) release() {
	pw.rn = runner{slots: pw.rn.slots[:0], key: pw.rn.key[:0], head: pw.rn.head[:0], limits: pw.rn.limits[:0]}
	for i := range pw.facts {
		pw.facts[i] = bufFact{}
	}
	pw.facts = pw.facts[:0]
	pw.arena = pw.arena[:0]
	pw.dedup.reset()
	pw.inferences = 0
	pw.rules = nil
	pw.stats = obsv.WorkerStats{}
	pw.stop = nil
	parWorkerPool.Put(pw)
}

// sink buffers the derivation; insertion and budget checks happen at the
// barrier. Two duplicate classes are dropped here instead of being buffered:
// tuples already in the (frozen) relation before this round, and tuples this
// worker already buffered this round. Only cross-worker same-round
// duplicates survive to the merge, keeping the serial barrier work
// proportional to the distinct new tuples, not to the inference count. The
// relation membership check and the local dedup are both pure hash-table
// reads/updates against the arenas — nothing is encoded, nothing allocates
// beyond amortized buffer growth.
func (pw *parWorker) sink(r *compiledRule, tuple []Val, _ []FactID) error {
	pw.inferences++
	if pw.stop != nil && pw.inferences&ctxCheckMask == 0 && pw.stop.Load() {
		return errEvalStopped
	}
	dup := pw.rn.db.Lookup(r.headPred).Contains(tuple)
	if !dup {
		// Key the local set by predicate + tuple: tuples of different
		// predicates may hash-collide.
		h := hashPredTuple(r.headPred, tuple)
		if pw.dedup.contains(pw, h, r.headPred, tuple) {
			dup = true
		} else {
			off := int32(len(pw.arena))
			pw.arena = append(pw.arena, tuple...)
			pw.facts = append(pw.facts, bufFact{rule: r, off: off})
			pw.dedup.add(h, int32(len(pw.facts)))
		}
	}
	if dup {
		if pw.rules != nil {
			pw.rules[r.idx].Duplicates++
		}
		return nil
	}
	return nil
}

// parEvaluator coordinates strata, rounds, and the worker pool.
type parEvaluator struct {
	db        *DB
	rules     []*compiledRule
	opts      Options
	stats     Stats
	curRound  int32
	newCounts map[string]int
	workers   []*parWorker
	ctx       context.Context // nil when the evaluation is unbounded
	stop      atomic.Bool     // set by the context watcher; polled by workers
	// panicked holds the first worker panic of the evaluation; the unit
	// claim loop polls it so surviving workers stop scheduling new units
	// once a sibling has died, and runRound reports it after the barrier.
	panicked atomic.Pointer[PanicError]

	// Trace state; all nil/unused unless Options.Trace.
	trace      *evalTrace
	mergeRules []obsv.RuleStats // barrier-side counters (derived, duplicates)
	strata     []obsv.StratumStats

	// span is Options.Span and stratumSpan the currently open stratum span;
	// both nil-receiver no-ops when span tracing is off. Only the
	// coordinator touches them — round spans bracket whole rounds (workers
	// included), and worker busy time is attached once at the end, so no
	// worker goroutine ever creates spans mid-join.
	span        *trace.Span
	stratumSpan *trace.Span
}

// evalParallel is the Workers > 1 entry point; the caller has already
// validated opts and compiled the rules.
func evalParallel(p *ast.Program, db *DB, rules []*compiledRule, opts Options) (*Result, error) {
	ev := &parEvaluator{
		db:        db,
		rules:     rules,
		opts:      opts,
		newCounts: map[string]int{},
		ctx:       opts.Context,
		span:      opts.Span,
	}
	if err := contextErr(ev.ctx); err != nil {
		return nil, err
	}
	if ev.ctx != nil && ev.ctx.Done() != nil {
		// Translate ctx.Done into an atomic flag the workers can poll per
		// batch of inferences; a channel select per tuple would be far too
		// expensive. The watcher exits with the evaluation.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ev.ctx.Done():
				ev.stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	// Materialize head and body relations up front so empty IDB predicates
	// exist and arities are checked, exactly like the sequential path.
	for _, r := range rules {
		if _, err := db.Rel(r.headPred, len(r.headArgs)); err != nil {
			return nil, err
		}
		for _, l := range r.body {
			if _, err := db.Rel(l.pred, l.arity); err != nil {
				return nil, err
			}
		}
	}

	ev.workers = make([]*parWorker, opts.Workers)
	for w := range ev.workers {
		pw := parWorkerPool.Get().(*parWorker)
		pw.stats = obsv.WorkerStats{Worker: w}
		if ev.ctx != nil {
			pw.stop = &ev.stop
		}
		pw.rn.db = db
		pw.rn.frozen = true
		pw.rn.sink = pw.sink
		ev.workers[w] = pw
	}
	defer func() {
		for _, pw := range ev.workers {
			pw.release()
		}
	}()
	if opts.Trace {
		ev.trace = newEvalTrace(rules)
		ev.mergeRules = make([]obsv.RuleStats, len(rules))
		for w := range ev.workers {
			ev.workers[w].rules = make([]obsv.RuleStats, len(rules))
		}
	}

	sched := depgraph.Analyze(p)
	for si := range sched.Strata {
		if err := ev.evalStratum(si, &sched.Strata[si]); err != nil {
			return nil, err
		}
	}

	// Attach each worker's cumulative busy time as a pre-measured span;
	// per-round worker spans would multiply the span count for no extra
	// signal.
	if ev.span != nil {
		for _, pw := range ev.workers {
			ev.span.AddFinished("worker", pw.stats.Busy).
				SetWorker(pw.stats.Worker).SetTuples(0, int64(pw.stats.Tuples)).
				SetNote(fmt.Sprintf("%d units", pw.stats.Units))
		}
	}

	if ev.trace != nil {
		// Fold the workers' join counters and the barrier's insert counters
		// into one per-rule table.
		for i := range ev.trace.rules {
			ev.trace.rules[i].TuplesDerived = ev.mergeRules[i].TuplesDerived
			ev.trace.rules[i].Duplicates = ev.mergeRules[i].Duplicates
			for _, pw := range ev.workers {
				ev.trace.rules[i].Firings += pw.rules[i].Firings
				ev.trace.rules[i].JoinProbes += pw.rules[i].JoinProbes
				ev.trace.rules[i].TuplesMatched += pw.rules[i].TuplesMatched
				ev.trace.rules[i].Duplicates += pw.rules[i].Duplicates
			}
		}
		ev.stats.Rules = ev.trace.rules
		ev.stats.Rounds = ev.trace.rounds
		ev.stats.Strata = ev.strata
		for _, pw := range ev.workers {
			ev.stats.Workers = append(ev.stats.Workers, pw.stats)
		}
	}
	return &Result{DB: db, Stats: ev.stats}, nil
}

// evalStratum runs one stratum to completion: a seed pass over all its
// rules, then (if recursive) semi-naive rounds until no new facts appear.
func (ev *parEvaluator) evalStratum(si int, st *depgraph.Stratum) error {
	start := time.Now()
	ev.stratumSpan = ev.span.Child("stratum").SetStratum(si)
	if ev.stratumSpan != nil {
		ev.stratumSpan.SetNote(strings.Join(st.Preds, ","))
		// End on every exit so error paths (budget, cancellation, panic)
		// still leave a measured span behind for the trace.
		defer func() {
			ev.stratumSpan.End()
			ev.stratumSpan = nil
		}()
	}
	preds := st.PredSet()
	srules := make([]*compiledRule, len(st.Rules))
	recOccs := make([][]int, len(st.Rules))
	for i, ri := range st.Rules {
		r := ev.rules[ri]
		srules[i] = r
		for _, occ := range r.idbOccs {
			if preds[r.body[occ].pred] {
				recOccs[i] = append(recOccs[i], occ)
			}
		}
	}

	// Compile-time index planning: build this stratum's indexes before its
	// first round, so every in-round probe is read-only.
	for _, r := range srules {
		for _, need := range r.indexNeeds {
			ev.db.Lookup(need.pred).ensureIndex(need.cols)
		}
	}

	factsBefore := ev.stats.Derived
	roundsBefore := ev.stats.Iterations

	// Seed pass: every rule once, no delta restriction. Facts land with
	// stamp curRound+1 so they form the first round's delta.
	var units []workUnit
	for i, r := range srules {
		units = ev.addUnits(units, r, recOccs[i], -1)
	}
	if err := ev.runRound(units); err != nil {
		return err
	}
	ev.stats.Iterations++

	if st.Recursive {
		for total(ev.newCounts) > 0 {
			if err := contextErr(ev.ctx); err != nil {
				return err
			}
			if ev.opts.MaxIterations > 0 && ev.stats.Iterations >= ev.opts.MaxIterations {
				return fmt.Errorf("%w: %d iterations", ErrBudgetExceeded, ev.stats.Iterations)
			}
			deltaCounts := ev.newCounts
			ev.newCounts = map[string]int{}
			ev.curRound++
			units = units[:0]
			for i, r := range srules {
				for _, occ := range recOccs[i] {
					if deltaCounts[r.body[occ].pred] == 0 {
						continue
					}
					units = ev.addUnits(units, r, recOccs[i], occ)
				}
			}
			if err := ev.runRound(units); err != nil {
				return err
			}
			ev.stats.Iterations++
		}
	} else {
		ev.newCounts = map[string]int{}
	}
	// Leave curRound past every stamp this stratum used, so the next
	// stratum's delta windows cannot overlap it.
	ev.curRound++

	if ev.trace != nil {
		ev.strata = append(ev.strata, obsv.StratumStats{
			Index:     si,
			Preds:     st.Preds,
			Recursive: st.Recursive,
			Rules:     len(st.Rules),
			Rounds:    ev.stats.Iterations - roundsBefore,
			NewFacts:  ev.stats.Derived - factsBefore,
			Wall:      time.Since(start),
		})
	}
	ev.stratumSpan.AddTuplesOut(int64(ev.stats.Derived - factsBefore))
	return nil
}

// addUnits appends the work units of one rule evaluation pass, sharding the
// first body literal across the worker count when the rule has a body.
func (ev *parEvaluator) addUnits(units []workUnit, r *compiledRule, occs []int, deltaOcc int) []workUnit {
	shards := int32(len(ev.workers))
	if len(r.body) == 0 || shards < 2 {
		return append(units, workUnit{rule: r, occs: occs, deltaOcc: deltaOcc, shardMod: 1})
	}
	for k := int32(0); k < shards; k++ {
		units = append(units, workUnit{rule: r, occs: occs, deltaOcc: deltaOcc, shardMod: shards, shardRem: k})
	}
	return units
}

// runRound fans units out to the workers, waits for the barrier, and merges
// the private buffers into the database with stamp curRound+1.
func (ev *parEvaluator) runRound(units []workUnit) error {
	var roundStart time.Time
	if ev.trace != nil {
		roundStart = time.Now()
	}
	roundSpan := ev.stratumSpan.Child("round").SetRound(int(ev.curRound))
	defer roundSpan.End()
	nw := len(ev.workers)
	if nw > len(units) {
		nw = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		pw := ev.workers[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker recover barrier: a panic in join/probe/buffer code
			// kills this worker's unit loop, records the first panic for
			// the coordinator, and lets the barrier complete — the process
			// and the other evaluations it hosts survive.
			defer func() {
				if r := recover(); r != nil {
					ev.panicked.CompareAndSwap(nil, newPanicError("worker", r))
				}
			}()
			faultinject.Hit(faultinject.WorkerStart)
			busyStart := time.Now()
			for {
				if pw.stop != nil && pw.stop.Load() {
					break
				}
				if ev.panicked.Load() != nil {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					break
				}
				u := units[i]
				pw.stats.Units++
				pw.rn.shardLit = 0
				pw.rn.shardMod = u.shardMod
				pw.rn.shardRem = u.shardRem
				if pw.rules != nil {
					pw.rn.cur = &pw.rules[u.rule.idx]
					if u.shardRem == 0 {
						// One logical firing per (rule, occurrence) pass,
						// regardless of how many shards split it.
						pw.rn.cur.Firings++
					}
				}
				pw.rn.setLimits(u.rule, u.occs, u.deltaOcc, ev.curRound)
				// The buffering sink fails only with errEvalStopped (budget
				// enforcement happens at the merge below); on cancellation
				// the worker abandons its remaining units.
				if err := pw.rn.runRule(u.rule); err != nil {
					break
				}
			}
			pw.stats.Busy += time.Since(busyStart)
		}()
	}
	wg.Wait()

	// Panicked or canceled rounds produce partial buffers; discard them and
	// report the typed error instead of merging. The worker panic takes
	// precedence: it is what the caller must degrade or fail on.
	if pe := ev.panicked.Load(); pe != nil {
		ev.discardBuffers()
		return pe
	}
	if err := contextErr(ev.ctx); err != nil {
		ev.discardBuffers()
		return err
	}

	// Barrier: merge private buffers, deduplicating through the relation's
	// hash set. Single-threaded, so inserts need no locking.
	stamp := ev.curRound + 1
	added := 0
	for _, pw := range ev.workers {
		ev.stats.Inferences += pw.inferences
		pw.inferences = 0
		pw.stats.Tuples += len(pw.facts)
		for _, bf := range pw.facts {
			if !ev.db.Lookup(bf.rule.headPred).InsertRound(pw.tuple(bf), stamp) {
				if ev.mergeRules != nil {
					ev.mergeRules[bf.rule.idx].Duplicates++
				}
				continue
			}
			if ev.mergeRules != nil {
				ev.mergeRules[bf.rule.idx].TuplesDerived++
			}
			ev.newCounts[bf.rule.headPred]++
			ev.stats.Derived++
			added++
		}
		pw.facts = pw.facts[:0]
		pw.arena = pw.arena[:0]
		pw.dedup.reset()
	}
	if t := ev.trace; t != nil {
		t.rounds = append(t.rounds, obsv.RoundStats{
			Round:      int(ev.curRound),
			RulesFired: len(units),
			NewFacts:   added,
			Wall:       time.Since(roundStart),
		})
	}
	roundSpan.AddTuplesOut(int64(added))
	if ev.opts.MaxFacts > 0 && ev.stats.Derived > ev.opts.MaxFacts {
		return fmt.Errorf("%w: %d derived facts", ErrBudgetExceeded, ev.stats.Derived)
	}
	// The merge is the parallel evaluator's round boundary: everything the
	// round derived is now in the shared relations, so this is where the
	// storage budget is enforceable.
	return memBudgetErr(ev.db, ev.opts.MaxBytes)
}

// discardBuffers drops every worker's partial round state after a panic or
// cancellation, so nothing half-derived reaches the database.
func (ev *parEvaluator) discardBuffers() {
	for _, pw := range ev.workers {
		pw.facts = pw.facts[:0]
		pw.arena = pw.arena[:0]
		pw.dedup.reset()
		pw.inferences = 0
	}
}
