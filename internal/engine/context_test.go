package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

// divergentProgram grows n(z), n(f(z)), n(f(f(z))), ... forever: without a
// budget or context the fixpoint never terminates, so it is the workload of
// choice for cancellation tests. Sequentially the whole evaluation happens
// inside round 0 (the cascade re-reads relation lengths), exercising the
// in-round context checks; in parallel mode relations are frozen per round,
// so it runs unboundedly many short rounds, exercising the round-boundary
// checks.
func divergentProgram(t *testing.T) (*ast.Program, *DB) {
	t.Helper()
	u, err := parser.Parse("n(z). n(f(X)) :- n(X). ?- n(X).")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := LoadFacts(db, u.Facts); err != nil {
		t.Fatal(err)
	}
	return u.Program(), db
}

// chainTC is a finite transitive-closure workload used to check that a
// context that stays live does not perturb results.
func chainTC(t *testing.T, n int) (*ast.Program, *DB, ast.Atom) {
	t.Helper()
	u, err := parser.Parse("t(X,Y) :- e(X,Y). t(X,Y) :- e(X,W), t(W,Y). ?- t(1,Y).")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	for i := 1; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
	}
	return u.Program(), db, u.Queries[0]
}

func TestEvalCanceledMidEvaluation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p, db := divergentProgram(t)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := Eval(p, db, Options{Context: ctx, Workers: workers})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("workers=%d: cancellation mislabeled: %v", workers, err)
		}
		// "Promptly": the divergent fixpoint would run forever; a canceled
		// one must return well within the test timeout. The bound is loose
		// to stay robust on slow CI machines.
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
	}
}

func TestEvalDeadlineExceeded(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, db := divergentProgram(t)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := Eval(p, db, Options{Context: ctx, Workers: workers})
		cancel()
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("workers=%d: want ErrDeadlineExceeded, got %v", workers, err)
		}
		if errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: deadline mislabeled as cancellation: %v", workers, err)
		}
	}
}

func TestEvalPreCanceledContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, db := divergentProgram(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Eval(p, db, Options{Context: ctx, Workers: workers}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
	}
}

func TestEvalLiveContextMatchesNoContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, db, query := chainTC(t, 40)
		res, err := Eval(p, db, Options{Context: context.Background(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		answers, err := AnswerSet(db, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 39 {
			t.Fatalf("workers=%d: got %d answers, want 39", workers, len(answers))
		}
		p2, db2, _ := chainTC(t, 40)
		res2, err := Eval(p2, db2, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Derived != res2.Stats.Derived {
			t.Fatalf("workers=%d: derived %d with context, %d without",
				workers, res.Stats.Derived, res2.Stats.Derived)
		}
	}
}

func TestEvalBudgetStillTyped(t *testing.T) {
	// Budgets and contexts coexist: a fact budget fires first when the
	// context stays live.
	p, db := divergentProgram(t)
	_, err := Eval(p, db, Options{Context: context.Background(), MaxFacts: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("budget stop mislabeled: %v", err)
	}
}
