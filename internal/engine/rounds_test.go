package engine

import (
	"testing"

	"factorlog/internal/parser"
)

func TestInsertRoundTracking(t *testing.T) {
	r := NewRelation(1)
	r.Insert([]Val{1})
	r.InsertRound([]Val{2}, 3)
	if r.Round(0) != 0 || r.Round(1) != 3 {
		t.Errorf("rounds = %d %d", r.Round(0), r.Round(1))
	}
	// Duplicate keeps the original round.
	r.InsertRound([]Val{1}, 9)
	if r.Round(0) != 0 {
		t.Error("duplicate insert changed the round")
	}
}

// TestDeltaDisciplineNoDoubleDerivation: on the non-linear rule
// t(X,Y) :- t(X,W), t(W,Y), a pair of premises from the same round must be
// combined exactly once per round, not once per delta position. We check
// semi-naive performs no more inferences than naive on a chain.
func TestDeltaDisciplineNoDoubleDerivation(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	load := func() *DB {
		db := NewDB()
		for i := 1; i < 20; i++ {
			db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		}
		return db
	}
	dbS, dbN := load(), load()
	rs, err := Eval(p, dbS, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Eval(p, dbN, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if dbS.Count("t") != dbN.Count("t") {
		t.Fatalf("fact counts differ: %d vs %d", dbS.Count("t"), dbN.Count("t"))
	}
	if rs.Stats.Inferences > rn.Stats.Inferences {
		t.Errorf("semi-naive inferences %d exceed naive %d on the non-linear rule",
			rs.Stats.Inferences, rn.Stats.Inferences)
	}
}

// TestSemiNaiveCompleteAcrossDeltaPositions: a fact derivable only by
// combining a round-r fact at the FIRST position with a round-r fact at the
// SECOND must still be derived (the P_{r-1}/delta/P_r split must not lose
// it).
func TestSemiNaiveCompleteAcrossDeltaPositions(t *testing.T) {
	// join(X,Z) :- left(X,Y), right(Y,Z); left/right both derived in the
	// same round from seeds.
	p := parser.MustParseProgram(`
		join(X, Z) :- left(X, Y), right(Y, Z).
		left(X, Y) :- el(X, Y).
		right(X, Y) :- er(X, Y).
		left(X, Y) :- left(X, W), el(W, Y).
		right(X, Y) :- right(X, W), er(W, Y).
	`)
	db := NewDB()
	for i := 1; i < 6; i++ {
		db.MustInsert("el", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("er", db.Store.Int(i), db.Store.Int(i+1))
	}
	if _, err := Eval(p, db, Options{Strategy: SemiNaive}); err != nil {
		t.Fatal(err)
	}
	dbN := NewDB()
	for i := 1; i < 6; i++ {
		dbN.MustInsert("el", dbN.Store.Int(i), dbN.Store.Int(i+1))
		dbN.MustInsert("er", dbN.Store.Int(i), dbN.Store.Int(i+1))
	}
	if _, err := Eval(p, dbN, Options{Strategy: Naive}); err != nil {
		t.Fatal(err)
	}
	if db.Count("join") != dbN.Count("join") {
		t.Errorf("semi-naive join=%d, naive join=%d", db.Count("join"), dbN.Count("join"))
	}
	if db.Count("join") == 0 {
		t.Error("no joins derived at all")
	}
}

// TestMutualRecursionRounds: deltas must flow across mutually recursive
// predicates.
func TestMutualRecursionRounds(t *testing.T) {
	p := parser.MustParseProgram(`
		even(X) :- zero(X).
		even(X) :- succ(Y, X), odd(Y).
		odd(X) :- succ(Y, X), even(Y).
	`)
	db := NewDB()
	db.MustInsert("zero", db.Store.Int(0))
	for i := 0; i < 10; i++ {
		db.MustInsert("succ", db.Store.Int(i), db.Store.Int(i+1))
	}
	if _, err := Eval(p, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Count("even") != 6 || db.Count("odd") != 5 {
		t.Errorf("even=%d odd=%d", db.Count("even"), db.Count("odd"))
	}
}
