package engine

import (
	"testing"

	"factorlog/internal/parser"
)

func TestReorderJoinsPreservesAnswers(t *testing.T) {
	// A deliberately bad literal order: the selective literal comes last.
	p := parser.MustParseProgram(`
		res(X, Y) :- big(A, B), big(B, C), sel(X), link(X, A), out(C, Y).
	`)
	load := func() *DB {
		db := NewDB()
		for i := 0; i < 40; i++ {
			db.MustInsert("big", db.Store.Int(i), db.Store.Int(i+1))
			db.MustInsert("out", db.Store.Int(i), db.Store.Int(1000+i))
		}
		db.MustInsert("sel", db.Store.Const("k"))
		db.MustInsert("link", db.Store.Const("k"), db.Store.Int(5))
		return db
	}
	dbPlain, dbReord := load(), load()
	rp, err := Eval(p, dbPlain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Eval(p, dbReord, Options{ReorderJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	q := parser.MustParseAtom("res(X, Y)")
	a, _ := AnswerSet(dbPlain, q)
	b, _ := AnswerSet(dbReord, q)
	if len(a) != len(b) || len(a) != 1 {
		t.Fatalf("answers: plain %v reordered %v", a, b)
	}
	for k := range a {
		if !b[k] {
			t.Errorf("missing %s", k)
		}
	}
	// Reordering starts from the selective sel/link literals, so the
	// big x big scan never happens unbound.
	if rr.Stats.Inferences > rp.Stats.Inferences {
		t.Errorf("reordered inferences %d > plain %d", rr.Stats.Inferences, rp.Stats.Inferences)
	}
}

func TestReorderJoinsOnRecursivePrograms(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	load := func() *DB {
		db := NewDB()
		for i := 1; i < 15; i++ {
			db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		}
		return db
	}
	db1, db2 := load(), load()
	if _, err := Eval(p, db1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(p, db2, Options{ReorderJoins: true}); err != nil {
		t.Fatal(err)
	}
	if db1.Count("t") != db2.Count("t") {
		t.Errorf("fact counts differ: %d vs %d", db1.Count("t"), db2.Count("t"))
	}
}

func TestReorderBodyShortRulesUntouched(t *testing.T) {
	r := parser.MustParseProgram(`p(X) :- a(X), b(X).`).Rules[0]
	if !reorderBody(r).Equal(r) {
		t.Error("two-literal bodies should not be reordered")
	}
}

func TestReorderBodyPrefersConstants(t *testing.T) {
	r := parser.MustParseProgram(`p(X) :- big(A, X), seed(5, A).`).Rules[0]
	got := reorderBody(r)
	// Not reordered (n < 3); extend with a third literal.
	r2 := parser.MustParseProgram(`p(X) :- big(A, X), mid(A, B), seed(5, A).`).Rules[0]
	got = reorderBody(r2)
	if got.Body[0].Pred != "seed" {
		t.Errorf("constant-bearing literal should run first: %s", got)
	}
}
