// Package engine implements bottom-up evaluation of Horn-clause programs:
// a hash-consed ground-term store, indexed relations, naive and semi-naive
// fixpoint evaluation (sequential and parallel), derivation-tree
// provenance, and uniform statistics (facts, inferences, iterations).
//
// # Term store and relations
//
// Ground terms are interned into a Store: every distinct ground term has
// exactly one Val, and compound values share their sub-structure. Equality
// is integer comparison and a list tail is a single Val, which makes the
// structure-sharing assumption of Example 4.6 of the paper ("each inference
// can be made in constant time, independently of the list size") literally
// true during evaluation. Relations hold tuples of Vals stamped with their
// insertion round (the semi-naive delta discipline needs no copying) and
// build column-subset hash indexes on demand or up front from the
// compiler's declared index needs.
//
// # Evaluation
//
// Eval compiles a program's rules into join plans and runs them to the
// least fixpoint under Options: naive or semi-naive strategy, optional
// join reordering, per-rule/per-round tracing (package obsv records), and
// derivation provenance. With Options.Workers > 1 the program is evaluated
// stratum by stratum over its predicate dependency condensation (package
// depgraph), each stratum's rounds fanned out over a worker pool; see
// parallel.go for the full design.
//
// # Bounding evaluations
//
// Two mechanisms bound an evaluation. Options.MaxIterations and
// Options.MaxFacts cap the fixpoint's rounds and derived-fact count,
// surfacing as ErrBudgetExceeded. Options.Context carries a caller
// lifetime — a server request's deadline or a client disconnect — and
// surfaces as ErrCanceled or ErrDeadlineExceeded, observed at round
// boundaries, every few thousand inferences within a round, and (in
// parallel mode) by each worker mid-round. All three errors are wrapped
// sentinels; test with errors.Is.
package engine
