package engine

// Incremental view maintenance: a Materialization keeps the least fixpoint
// of a program over a mutable EDB, refreshed in O(change) per mutation
// batch instead of O(database) per query.
//
// The round stamps the semi-naive evaluator already carries generalize to
// a second role here. Within one maintenance wave w, the stamps implement
// the delta discipline exactly as in eval.go: facts stamped w are the
// wave's delta, facts stamped below w are older state, and facts derived
// during the wave are stamped w+1 so they become the next wave's delta.
// Across batches, each relation additionally records the epoch a row was
// inserted in (counted mode), so observability can attribute facts to the
// mutation batch that introduced them.
//
// Insertions use semi-naive delta propagation with an exact-once window
// scheme: every body position of a delta predicate is decomposed the
// classic way (before the delta position [0,w-1], the delta position
// [w,w], after it [0,w]), and — unlike a from-scratch fixpoint — positions
// of non-delta predicates are windowed [0,w] rather than unrestricted, so
// same-wave emissions (stamped w+1) are never joined against and each new
// body instantiation is counted exactly once. That exact-once property is
// what lets the same pass maintain per-fact derivation counts.
//
// Deletions are counting-based (Gupta–Mumick): each fact's count is the
// number of immediate derivations currently supporting it (EDB membership
// counts as one support). Retracting a fact decrements its count; a fact
// whose count reaches zero dies, and a deletion wave decrements the heads
// of every body instantiation the dying facts participated in, using the
// mirrored window scheme (alive [0,0] before the dying position, dying
// [1,1] at it, alive-or-dying [0,1] after). Counts are unsound under
// recursion — a fact can support itself through a cycle — so when the
// downstream closure of a retracted predicate touches a recursive stratum
// the affected IDB predicates are cleared and recomputed from the
// surviving facts instead (DRed's rederivation phase, done eagerly).
import (
	"context"
	"errors"
	"fmt"

	"factorlog/internal/ast"
	"factorlog/internal/depgraph"
	"factorlog/internal/faultinject"
)

// ErrMutation is returned (wrapped) when a mutation batch is invalid: a
// non-ground atom or an arity conflict. The batch is rejected before any
// state changes. Asserting a fact of a derived (IDB) predicate is legal —
// it adds EDB support, exactly like a ground fact for that predicate in
// the program source — so no predicate check applies. Callers test with
// errors.Is.
var ErrMutation = errors.New("invalid mutation")

// MaterializeOptions bounds a materialization's maintenance work.
type MaterializeOptions struct {
	// StartEpoch is the epoch the initial build is tagged with; each
	// successful Apply advances the epoch by one.
	StartEpoch int64
	// MaxWaves bounds maintenance waves per operation; 0 means the
	// default (1<<20), a backstop against runaway cascades.
	MaxWaves int
	// MaxFacts bounds facts derived by one build or Apply; 0 = unlimited.
	// Exceeding it fails the operation with ErrBudgetExceeded.
	MaxFacts int
	// MaxBytes bounds the materialized DB's storage footprint, checked at
	// wave boundaries like Options.MaxBytes; 0 = unlimited.
	MaxBytes int64
	// CommitHook, when non-nil, runs after a batch's maintenance succeeds
	// and before the epoch advances, with the epoch the batch will commit
	// as and the effective asserts/retracts (noop entries removed). A hook
	// error aborts the commit like any mid-batch failure: the base EDB
	// rolls back and the epoch stays unchanged. The durability layer hangs
	// its write-ahead log here — a batch that cannot be made durable is
	// never acknowledged.
	CommitHook func(epoch int64, assert, retract []ast.Atom) error
}

const defaultMaxWaves = 1 << 20

// ApplyStats reports the work one mutation batch (or rebuild) performed.
type ApplyStats struct {
	// Asserted and Retracted count effective EDB changes; Noop* count
	// batch entries that changed nothing (assert of a present fact,
	// retract of an absent one).
	Asserted, Retracted       int
	NoopAsserts, NoopRetracts int
	// NewFacts and DeletedFacts count presence changes in the
	// materialized DB (EDB and IDB). Under a stratum rebuild these count
	// the gross cleared/recomputed facts — rebuilds really are O(stratum)
	// and the stats say so.
	NewFacts, DeletedFacts int
	// Inferences counts body instantiations visited by the waves.
	Inferences int
	// Waves counts maintenance waves (insertion + deletion).
	Waves int
	// Rebuilt reports that the DRed-style stratum rebuild ran (a
	// retraction's downstream closure touched a recursive stratum).
	Rebuilt bool
	// Total is the number of live facts after the operation.
	Total int
}

// Changed returns the number of presence changes the batch caused; the
// O(change)/O(db) ratio observability reports is Changed/Total.
func (st ApplyStats) Changed() int { return st.NewFacts + st.DeletedFacts }

// Materialization maintains the fixpoint of a program over a mutable EDB.
// It is not safe for concurrent use; callers serialize (the pipeline
// registry holds a per-entry lock, the facade is single-threaded).
type Materialization struct {
	prog  *ast.Program
	store *Store
	rules []*compiledRule
	idb   map[string]bool
	// recursive marks predicates defined in a recursive stratum.
	recursive map[string]bool
	// downstream maps a body predicate to the head predicates it can
	// reach in one rule application.
	downstream map[string][]string
	arity      map[string]int

	base  *DB // the mutable EDB (live asserted facts only)
	db    *DB // materialized EDB + IDB, counted mode
	epoch int64
	dirty bool // a failed Apply poisoned db; rebuild before next use
	opts  MaterializeOptions
}

// Materialize compiles p, loads the base facts, and computes the initial
// fixpoint with derivation counts. The returned materialization owns its
// store; render answers through DB().Store.
func Materialize(p *ast.Program, baseFacts []ast.Atom, opts MaterializeOptions) (*Materialization, error) {
	if opts.MaxWaves == 0 {
		opts.MaxWaves = defaultMaxWaves
	}
	store := NewStore()
	rules, err := compileRulesGuarded(p, store, false)
	if err != nil {
		return nil, err
	}
	m := &Materialization{
		prog:       p,
		store:      store,
		rules:      rules,
		idb:        p.IDBPreds(),
		recursive:  map[string]bool{},
		downstream: map[string][]string{},
		arity:      map[string]int{},
		epoch:      opts.StartEpoch,
		opts:       opts,
	}
	sched := depgraph.Analyze(p)
	for i := range sched.Strata {
		if !sched.Strata[i].Recursive {
			continue
		}
		for _, pred := range sched.Strata[i].Preds {
			m.recursive[pred] = true
		}
	}
	for _, r := range rules {
		m.arity[r.headPred] = len(r.headArgs)
		for _, l := range r.body {
			m.arity[l.pred] = l.arity
		}
		seen := map[string]bool{}
		for _, l := range r.body {
			if seen[l.pred] {
				continue
			}
			seen[l.pred] = true
			m.downstream[l.pred] = append(m.downstream[l.pred], r.headPred)
		}
	}
	m.base = NewDBWith(store)
	for _, f := range baseFacts {
		tuple, err := m.groundTuple(f)
		if err != nil {
			return nil, err
		}
		if known, ok := m.arity[f.Pred]; ok && known != len(f.Args) {
			return nil, fmt.Errorf("%w: %s used with arity %d and %d", ErrMutation, f.Pred, known, len(f.Args))
		}
		m.arity[f.Pred] = len(f.Args)
		rel, err := m.base.Rel(f.Pred, len(f.Args))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMutation, err)
		}
		rel.Insert(tuple)
	}
	if err := m.rebuild(context.Background()); err != nil {
		return nil, err
	}
	return m, nil
}

// DB returns the materialized database (EDB + IDB, derivation-counted).
// Treat it as read-only; Answers/AnswerSet skip dead rows.
func (m *Materialization) DB() *DB { return m.db }

// Epoch returns the epoch of the last successfully applied batch.
func (m *Materialization) Epoch() int64 { return m.epoch }

// Dirty reports that the last Apply failed mid-flight; the next Apply or
// Rebuild restores consistency by recomputing from the (rolled-back) base.
func (m *Materialization) Dirty() bool { return m.dirty }

// BaseCount returns the number of live EDB facts.
func (m *Materialization) BaseCount() int { return m.base.TotalFacts() }

// BaseFacts returns the live EDB facts as ground atoms, in relation order.
func (m *Materialization) BaseFacts() []ast.Atom {
	var out []ast.Atom
	for _, pred := range m.base.Preds() {
		rel := m.base.Lookup(pred)
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			if rel.Round(pos) < 0 {
				continue
			}
			tuple := rel.Tuple(pos)
			args := make([]ast.Term, len(tuple))
			for i, v := range tuple {
				args[i] = m.store.ToAST(v)
			}
			out = append(out, ast.Atom{Pred: pred, Args: args})
		}
	}
	return out
}

// groundTuple interns a ground atom's arguments, rejecting variables.
func (m *Materialization) groundTuple(a ast.Atom) ([]Val, error) {
	if !a.Ground() {
		return nil, fmt.Errorf("%w: %s is not ground", ErrMutation, a)
	}
	tuple := make([]Val, len(a.Args))
	for i, t := range a.Args {
		v, err := m.store.FromAST(t)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrMutation, a, err)
		}
		tuple[i] = v
	}
	return tuple, nil
}

// validate interns and checks a batch without touching any state, so an
// invalid batch is rejected atomically with ErrMutation.
func (m *Materialization) validate(atoms []ast.Atom) ([][]Val, error) {
	tuples := make([][]Val, len(atoms))
	for i, a := range atoms {
		if known, ok := m.arity[a.Pred]; ok && known != len(a.Args) {
			return nil, fmt.Errorf("%w: %s used with arity %d and %d", ErrMutation, a.Pred, known, len(a.Args))
		}
		tuple, err := m.groundTuple(a)
		if err != nil {
			return nil, err
		}
		tuples[i] = tuple
	}
	return tuples, nil
}

// Rebuild recomputes the materialization from the base EDB (clearing a
// dirty flag left by a failed Apply). The epoch is unchanged: the base
// holds exactly the state of the last successful batch.
func (m *Materialization) Rebuild(ctx context.Context) (err error) {
	defer recoverTo("apply", &err)
	return m.rebuild(ctx)
}

// Apply applies one mutation batch: retractions first, then assertions,
// so a batch containing both for one fact leaves it present. On success
// the epoch advances by one. The batch is atomic: validation errors
// reject it untouched, and a failure mid-maintenance (panic, budget,
// cancellation) rolls the base EDB back and poisons the materialized DB,
// which is rebuilt from the restored base on the next operation — the
// observable state is always that of the last successful epoch.
func (m *Materialization) Apply(ctx context.Context, assert, retract []ast.Atom) (st ApplyStats, err error) {
	var undoAssert, undoRetract []factRef
	mutating := false
	defer func() {
		if err == nil || !mutating {
			return
		}
		// Roll the base back so it reflects the last successful epoch,
		// then poison the materialized DB: partial wave state is not
		// recoverable in place, but a rebuild from the restored base is.
		for _, f := range undoAssert {
			m.base.Lookup(f.pred).Delete(f.tuple)
		}
		for _, f := range undoRetract {
			m.base.Lookup(f.pred).Insert(f.tuple)
		}
		m.dirty = true
	}()
	defer recoverTo("apply", &err)
	faultinject.Hit(faultinject.FactsApply)

	if m.dirty {
		if err := m.rebuild(ctx); err != nil {
			return st, err
		}
	}
	retractTuples, err := m.validate(retract)
	if err != nil {
		return st, err
	}
	assertTuples, err := m.validate(assert)
	if err != nil {
		return st, err
	}
	for _, a := range retract {
		m.arity[a.Pred] = len(a.Args)
	}
	for _, a := range assert {
		m.arity[a.Pred] = len(a.Args)
	}

	mutating = true
	m.db.setEpoch(int32(m.epoch + 1))
	mt := &maintainer{m: m, ctx: ctx, st: &st}

	// Phase 1: retractions. Remove EDB support; facts whose derivation
	// count hits zero die and cascade.
	var victims []victimRef
	retractedPreds := map[string]bool{}
	for i, a := range retract {
		brel := m.base.Lookup(a.Pred)
		if brel == nil || !brel.Delete(retractTuples[i]) {
			st.NoopRetracts++
			continue
		}
		undoRetract = append(undoRetract, factRef{a.Pred, retractTuples[i]})
		st.Retracted++
		retractedPreds[a.Pred] = true
		rel := m.db.Lookup(a.Pred)
		if rel == nil {
			continue
		}
		row, ok := rel.findRow(retractTuples[i])
		if !ok {
			continue
		}
		if c := rel.addCount(row, -1); c == 0 {
			victims = append(victims, victimRef{a.Pred, row})
		} else if c < 0 {
			panic(fmt.Sprintf("engine: negative derivation count for %s", a.Pred))
		}
	}
	if len(victims) > 0 || len(retractedPreds) > 0 {
		if closure, recursive := m.retractionClosure(retractedPreds); recursive {
			// Counting is unsound here: kill the directly retracted
			// facts, then clear and recompute the affected IDB strata.
			for _, v := range victims {
				m.db.Lookup(v.pred).deleteRow(v.row)
				st.DeletedFacts++
			}
			if err := mt.rebuildPreds(closure); err != nil {
				return st, err
			}
			st.Rebuilt = true
		} else if len(victims) > 0 {
			if err := mt.runDeleteWaves(victims); err != nil {
				return st, err
			}
		}
	}

	// Phase 2: assertions. New EDB facts are the wave-1 delta.
	m.db.resetRounds()
	mt.wave = 0
	mt.newCounts = map[string]int{}
	for i, a := range assert {
		brel, rerr := m.base.Rel(a.Pred, len(a.Args))
		if rerr != nil {
			return st, fmt.Errorf("%w: %v", ErrMutation, rerr)
		}
		if !brel.Insert(assertTuples[i]) {
			st.NoopAsserts++
			continue
		}
		undoAssert = append(undoAssert, factRef{a.Pred, assertTuples[i]})
		st.Asserted++
		rel, rerr := m.db.Rel(a.Pred, len(a.Args))
		if rerr != nil {
			return st, fmt.Errorf("%w: %v", ErrMutation, rerr)
		}
		rel.EnableCounts()
		rel.setEpoch(int32(m.epoch + 1))
		if row, ok := rel.findRow(assertTuples[i]); ok {
			// Already derivable: the fact gains EDB support but its
			// presence is unchanged — a count bump, not a delta.
			rel.addCount(row, 1)
			continue
		}
		rel.InsertRound(assertTuples[i], 1)
		mt.newCounts[a.Pred]++
		st.NewFacts++
	}
	if total(mt.newCounts) > 0 {
		if err := mt.runInsertWaves(m.rules); err != nil {
			return st, err
		}
	}

	if m.opts.CommitHook != nil && st.Changed()+st.Asserted+st.Retracted > 0 {
		if err := m.opts.CommitHook(m.epoch+1, m.refAtoms(undoAssert), m.refAtoms(undoRetract)); err != nil {
			return st, err
		}
	}

	m.epoch++
	m.dirty = false
	st.Total = m.db.TotalFacts()
	return st, nil
}

// refAtoms renders effective-change fact refs back to ground atoms for the
// commit hook.
func (m *Materialization) refAtoms(refs []factRef) []ast.Atom {
	if len(refs) == 0 {
		return nil
	}
	out := make([]ast.Atom, len(refs))
	for i, f := range refs {
		args := make([]ast.Term, len(f.tuple))
		for j, v := range f.tuple {
			args[j] = m.store.ToAST(v)
		}
		out[i] = ast.Atom{Pred: f.pred, Args: args}
	}
	return out
}

type factRef struct {
	pred  string
	tuple []Val
}

// victimRef names a live arena row whose derivation count reached zero.
type victimRef struct {
	pred string
	row  int32
}

// retractionClosure returns the set of predicates reachable downstream
// from the retracted predicates (including themselves) and whether any of
// them belongs to a recursive stratum.
func (m *Materialization) retractionClosure(preds map[string]bool) (map[string]bool, bool) {
	closure := map[string]bool{}
	recursive := false
	var stack []string
	for p := range preds {
		stack = append(stack, p)
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if closure[p] {
			continue
		}
		closure[p] = true
		if m.recursive[p] {
			recursive = true
		}
		stack = append(stack, m.downstream[p]...)
	}
	return closure, recursive
}

// rebuild recomputes the whole materialization from the base EDB.
func (m *Materialization) rebuild(ctx context.Context) error {
	db := NewDBWith(m.store)
	for _, r := range m.rules {
		rel, err := db.Rel(r.headPred, len(r.headArgs))
		if err != nil {
			return err
		}
		rel.EnableCounts()
		for _, l := range r.body {
			rel, err := db.Rel(l.pred, l.arity)
			if err != nil {
				return err
			}
			rel.EnableCounts()
		}
	}
	for pred, brel := range m.base.relations {
		rel, err := db.Rel(pred, brel.Arity())
		if err != nil {
			return err
		}
		rel.EnableCounts()
		for pos := int32(0); pos < int32(brel.Len()); pos++ {
			if brel.Round(pos) < 0 {
				continue
			}
			rel.InsertRound(brel.Tuple(pos), 1)
		}
	}
	db.setEpoch(int32(m.epoch))
	var st ApplyStats
	mt := &maintainer{m: m, ctx: ctx, st: &st}
	old := m.db
	m.db = db
	if err := mt.initialWaves(m.rules); err != nil {
		m.db = old
		return err
	}
	m.dirty = false
	return nil
}

// rebuildPreds clears the IDB predicates in closure and recomputes them
// from the surviving facts — the DRed rederivation phase, run eagerly
// over the affected strata only.
func (mt *maintainer) rebuildPreds(closure map[string]bool) error {
	m := mt.m
	rebuildSet := map[string]bool{}
	for p := range closure {
		if m.idb[p] {
			rebuildSet[p] = true
		}
	}
	if len(rebuildSet) == 0 {
		return nil
	}
	for pred := range rebuildSet {
		rel := m.db.Lookup(pred)
		if rel == nil {
			continue
		}
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			if rel.Round(pos) < 0 {
				continue
			}
			rel.deleteRow(pos)
			mt.st.DeletedFacts++
		}
	}
	// Re-seed the EDB support of rebuilt predicates (a retractable
	// predicate can also be derivable).
	for pred := range rebuildSet {
		brel := m.base.Lookup(pred)
		if brel == nil {
			continue
		}
		rel := m.db.Lookup(pred)
		for pos := int32(0); pos < int32(brel.Len()); pos++ {
			if brel.Round(pos) < 0 {
				continue
			}
			rel.InsertRound(brel.Tuple(pos), 1)
			mt.st.NewFacts++
		}
	}
	var active []*compiledRule
	for _, r := range m.rules {
		if rebuildSet[r.headPred] {
			active = append(active, r)
		}
	}
	return mt.initialWaves(active)
}

// maintainer runs maintenance waves over the materialized DB, reusing the
// evaluator's compiled rules and join runner with explicit round windows.
type maintainer struct {
	m   *Materialization
	ctx context.Context
	st  *ApplyStats

	rn         runner
	wave       int32
	newCounts  map[string]int // facts stamped wave+1, per predicate
	next       []victimRef    // next deletion wave's victims
	occScratch []int
}

// initialWaves treats every live fact as the wave-1 delta and runs the
// active rules to fixpoint: the initial build (active = all rules) and
// the DRed rederivation (active = the rebuilt strata's rules) are the
// same computation over different rule subsets.
func (mt *maintainer) initialWaves(active []*compiledRule) error {
	m := mt.m
	buildIndexes(m.db, active)
	mt.wave = 0
	mt.newCounts = map[string]int{}
	mt.rn = runner{db: m.db}
	mt.rn.sink = func(r *compiledRule, tuple []Val, _ []FactID) error {
		return mt.insertSink(r, tuple)
	}
	// Bodyless rules (e.g. magic seeds) fire exactly once, here.
	for _, r := range active {
		if len(r.body) > 0 {
			continue
		}
		mt.setInsertLimits(r, nil, -1)
		if err := mt.rn.runRule(r); err != nil {
			return err
		}
	}
	// Stamp every live fact as the wave-1 delta (facts emitted by the
	// bodyless rules above carry stamp 1 already) and seed the wave loop
	// with the per-predicate live counts.
	for _, rel := range m.db.relations {
		for i := range rel.rounds {
			if rel.rounds[i] >= 0 {
				rel.rounds[i] = 1
			}
		}
	}
	mt.newCounts = map[string]int{}
	for pred, rel := range m.db.relations {
		if n := rel.Live(); n > 0 {
			mt.newCounts[pred] = n
		}
	}
	return mt.runInsertWaves(active)
}

// insertSink consumes derived head tuples during insertion waves: a new
// fact is inserted stamped wave+1 (the next delta) with count 1; a
// re-derivation of a live fact bumps its count and does not propagate.
func (mt *maintainer) insertSink(r *compiledRule, tuple []Val) error {
	mt.st.Inferences++
	if mt.st.Inferences&ctxCheckMask == 0 {
		if err := contextErr(mt.ctx); err != nil {
			return err
		}
	}
	rel := mt.m.db.Lookup(r.headPred)
	if row, ok := rel.findRow(tuple); ok {
		rel.addCount(row, 1)
		return nil
	}
	rel.InsertRound(tuple, mt.wave+1)
	mt.newCounts[r.headPred]++
	mt.st.NewFacts++
	if max := mt.m.opts.MaxFacts; max > 0 && mt.st.NewFacts > max {
		return fmt.Errorf("%w: %d facts derived during maintenance", ErrBudgetExceeded, mt.st.NewFacts)
	}
	return nil
}

// runInsertWaves drains newCounts: facts stamped w are joined as the
// wave-w delta, emitting facts stamped w+1, until no wave produces a new
// fact.
func (mt *maintainer) runInsertWaves(active []*compiledRule) error {
	m := mt.m
	mt.rn.db = m.db
	mt.rn.sink = func(r *compiledRule, tuple []Val, _ []FactID) error {
		return mt.insertSink(r, tuple)
	}
	for total(mt.newCounts) > 0 {
		if err := contextErr(mt.ctx); err != nil {
			return err
		}
		if err := memBudgetErr(m.db, m.opts.MaxBytes); err != nil {
			return err
		}
		if mt.st.Waves >= m.opts.MaxWaves {
			return fmt.Errorf("%w: %d maintenance waves", ErrBudgetExceeded, mt.st.Waves)
		}
		faultinject.Hit(faultinject.DeltaWave)
		delta := mt.newCounts
		mt.newCounts = map[string]int{}
		mt.wave++
		for _, r := range active {
			occs := mt.bodyOccs(r, delta)
			for _, li := range occs {
				mt.setInsertLimits(r, occs, li)
				if err := mt.rn.runRule(r); err != nil {
					return err
				}
			}
		}
		mt.st.Waves++
	}
	return nil
}

// bodyOccs returns the body positions of r whose predicate is in delta.
func (mt *maintainer) bodyOccs(r *compiledRule, delta map[string]int) []int {
	occs := mt.occScratch[:0]
	for i := range r.body {
		if delta[r.body[i].pred] > 0 {
			occs = append(occs, i)
		}
	}
	mt.occScratch = occs
	return occs
}

// setInsertLimits prepares the wave-w windows: delta position [w,w],
// positions of delta predicates before it [0,w-1], everything else [0,w]
// — never unrestricted, so same-wave emissions (stamped w+1) are
// excluded and each new instantiation is found exactly once.
func (mt *maintainer) setInsertLimits(r *compiledRule, occs []int, deltaOcc int) {
	rn := &mt.rn
	if cap(rn.limits) < len(r.body) {
		rn.limits = make([]roundRange, len(r.body))
	}
	rn.limits = rn.limits[:len(r.body)]
	w := mt.wave
	for i := range rn.limits {
		rn.limits[i] = roundRange{0, w}
	}
	for _, occ := range occs {
		switch {
		case occ < deltaOcc:
			rn.limits[occ] = roundRange{0, w - 1}
		case occ == deltaOcc:
			rn.limits[occ] = roundRange{w, w}
		default:
			rn.limits[occ] = roundRange{0, w}
		}
	}
}

// runDeleteWaves cascades a set of dying facts: each wave stamps the
// dying rows 1 (alive rows are 0), decrements the head count of every
// body instantiation that includes at least one dying fact — counted
// exactly once at its first dying position — then kills the wave's rows.
// Heads whose count reaches zero form the next wave.
func (mt *maintainer) runDeleteWaves(victims []victimRef) error {
	m := mt.m
	m.db.resetRounds()
	buildIndexes(m.db, m.rules)
	mt.rn = runner{db: m.db}
	mt.rn.sink = func(r *compiledRule, tuple []Val, _ []FactID) error {
		return mt.deleteSink(r, tuple)
	}
	wave := victims
	for len(wave) > 0 {
		if err := contextErr(mt.ctx); err != nil {
			return err
		}
		if mt.st.Waves >= m.opts.MaxWaves {
			return fmt.Errorf("%w: %d maintenance waves", ErrBudgetExceeded, mt.st.Waves)
		}
		faultinject.Hit(faultinject.DeltaWave)
		dyingPreds := map[string]int{}
		for _, v := range wave {
			m.db.Lookup(v.pred).rounds[v.row] = 1
			dyingPreds[v.pred]++
		}
		mt.next = mt.next[:0]
		for _, r := range m.rules {
			occs := mt.bodyOccs(r, dyingPreds)
			for _, li := range occs {
				mt.setDeleteLimits(r, occs, li)
				if err := mt.rn.runRule(r); err != nil {
					return err
				}
			}
		}
		for _, v := range wave {
			m.db.Lookup(v.pred).deleteRow(v.row)
			mt.st.DeletedFacts++
		}
		mt.st.Waves++
		wave = append(wave[:0:0], mt.next...)
	}
	return nil
}

// setDeleteLimits mirrors setInsertLimits for a deletion wave: alive rows
// are stamped 0 and dying rows 1, so the delta position is [1,1], dying
// positions before it [0,0], and everything else [0,1].
func (mt *maintainer) setDeleteLimits(r *compiledRule, occs []int, deltaOcc int) {
	rn := &mt.rn
	if cap(rn.limits) < len(r.body) {
		rn.limits = make([]roundRange, len(r.body))
	}
	rn.limits = rn.limits[:len(r.body)]
	for i := range rn.limits {
		rn.limits[i] = roundRange{0, 1}
	}
	for _, occ := range occs {
		switch {
		case occ < deltaOcc:
			rn.limits[occ] = roundRange{0, 0}
		case occ == deltaOcc:
			rn.limits[occ] = roundRange{1, 1}
		default:
			rn.limits[occ] = roundRange{0, 1}
		}
	}
}

// deleteSink decrements the derivation count of a head fact that just
// lost a body instantiation; a count reaching zero schedules the row for
// the next wave. Rows already dying this wave are skipped — their counts
// no longer matter.
func (mt *maintainer) deleteSink(r *compiledRule, tuple []Val) error {
	mt.st.Inferences++
	if mt.st.Inferences&ctxCheckMask == 0 {
		if err := contextErr(mt.ctx); err != nil {
			return err
		}
	}
	rel := mt.m.db.Lookup(r.headPred)
	row, ok := rel.findRow(tuple)
	if !ok {
		return nil
	}
	if rel.Round(row) != 0 {
		return nil // dying this wave
	}
	switch c := rel.addCount(row, -1); {
	case c == 0:
		mt.next = append(mt.next, victimRef{r.headPred, row})
	case c < 0:
		panic(fmt.Sprintf("engine: negative derivation count for %s", r.headPred))
	}
	return nil
}
