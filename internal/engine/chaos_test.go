package engine

import (
	"errors"
	"fmt"
	"testing"

	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// TestChaos is the deterministic chaos suite: with every injection point
// armed at seed-derived rates, evaluations across all worker counts must
// (1) never crash the process — every failure is a typed error, (2) never
// deadlock — the suite finishing is the assertion, bounded by go test's
// timeout, and (3) produce exactly the baseline answers whenever they
// succeed, whether or not faults fired along the way (success after a
// worker panic means the sequential retry completed the fixpoint).
//
// Seeds are fixed so CI failures reproduce exactly: the per-point firing
// period is a pure function of (seed, point) and the call counters.
func TestChaos(t *testing.T) {
	const n = 20
	baseline, err := tcAnswerSet(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseAtom("t(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	allPoints := []faultinject.Point{
		faultinject.ArenaGrow, faultinject.WorkerStart, faultinject.IndexProbe,
		faultinject.PlanCompile, faultinject.ContextCheck,
	}
	seeds := []uint64{1, 2, 3, 42, 12345}
	workerCounts := []int{1, 2, 4, 8}

	for _, seed := range seeds {
		for _, maxPeriod := range []uint64{25, 400} {
			t.Run(fmt.Sprintf("seed=%d period<=%d", seed, maxPeriod), func(t *testing.T) {
				// Build every EDB before arming: fact loading here is test
				// setup, not the system under test.
				dbs := make([]*DB, len(workerCounts))
				for i := range workerCounts {
					dbs[i] = chainDB(n)
				}
				disable := faultinject.Enable(faultinject.Config{
					Seed: seed, MaxPeriod: maxPeriod, Points: allPoints,
				})
				defer disable()

				for i, workers := range workerCounts {
					firedBefore := faultinject.TotalFired()
					res, err := Eval(tcProgram(), dbs[i], Options{Workers: workers})
					if err != nil {
						// Never-crash: the only acceptable failure is the
						// typed internal error from a recovery barrier.
						if !errors.Is(err, ErrInternal) {
							t.Fatalf("workers=%d: untyped failure %v", workers, err)
						}
						var pe *PanicError
						if !errors.As(err, &pe) || len(pe.Stack) == 0 {
							t.Fatalf("workers=%d: internal error without stack: %v", workers, err)
						}
						continue
					}
					// Success must mean correct answers — even when faults
					// fired and the run degraded to the sequential retry.
					got, aerr := AnswerSet(dbs[i], q)
					if aerr != nil {
						t.Fatalf("workers=%d: answer read-back: %v", workers, aerr)
					}
					if !sameSet(got, baseline) {
						t.Fatalf("workers=%d (degraded=%v, fired=%d): %d answers, want %d",
							workers, res.Stats.Degraded, faultinject.TotalFired()-firedBefore,
							len(got), len(baseline))
					}
				}
			})
		}
	}
}

// TestChaosDisabledDifferential pins the harness-off invariant the chaos
// suite's baseline rests on: with injection disabled, every worker count
// agrees with the sequential evaluator exactly.
func TestChaosDisabledDifferential(t *testing.T) {
	if faultinject.Enabled() {
		t.Fatal("harness armed at test start")
	}
	baseline, err := tcAnswerSet(20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := tcAnswerSet(20, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameSet(got, baseline) {
			t.Errorf("workers=%d: answers differ from sequential baseline", workers)
		}
	}
}
