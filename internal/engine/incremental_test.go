package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// incrementalPrograms are the rule families the differential tests churn:
// linear recursion (TC), a non-recursive join pyramid, a derivable EDB
// predicate (retractable facts that rules can also produce), and mutual
// recursion across two predicates.
var incrementalPrograms = map[string]string{
	"tc": `
		t(X,Y) :- e(X,Y).
		t(X,Y) :- e(X,W), t(W,Y).
		?- t(X,Y).`,
	"layered": `
		j1(X,Y) :- e(X,Y).
		j2(X,Z) :- j1(X,Y), e(Y,Z).
		j3(X,Z) :- j2(X,Y), j1(Y,Z).
		?- j3(X,Y).`,
	"derivable-edb": `
		e(X,Y) :- seed(X,Y).
		p(X,Y) :- e(X,Y), m(Y).
		?- p(X,Y).`,
	"mutual": `
		even(X) :- zero(X).
		odd(Y) :- even(X), succ(X,Y).
		even(Y) :- odd(X), succ(X,Y).
		?- even(X).`,
}

func mustUnit(t *testing.T, src string) *parser.Unit {
	t.Helper()
	u, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

// dumpLive renders every live fact of every relation as pred(tuple).
func dumpLive(db *DB) map[string]bool {
	out := map[string]bool{}
	for _, pred := range db.Preds() {
		rel := db.Lookup(pred)
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			if rel.Round(pos) < 0 {
				continue
			}
			out[pred+db.Store.TupleString(rel.Tuple(pos))] = true
		}
	}
	return out
}

// scratchFixpoint evaluates prog from scratch over facts and returns the
// live-fact dump, the reference the incremental state must match.
func scratchFixpoint(t *testing.T, prog *ast.Program, facts []ast.Atom, workers int) map[string]bool {
	t.Helper()
	db := NewDB()
	if err := LoadFacts(db, facts); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := Eval(prog, db, Options{Workers: workers}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	return dumpLive(db)
}

func diffDump(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	for f := range want {
		if !got[f] {
			t.Errorf("%s: missing %s", label, f)
		}
	}
	for f := range got {
		if !want[f] {
			t.Errorf("%s: extra %s", label, f)
		}
	}
}

func atom(t *testing.T, src string) ast.Atom {
	t.Helper()
	a, err := parser.ParseAtom(src)
	if err != nil {
		t.Fatalf("atom %q: %v", src, err)
	}
	return a
}

// TestMaterializeInitialBuild pins the initial fixpoint (and its counts)
// against from-scratch evaluation for every program family.
func TestMaterializeInitialBuild(t *testing.T) {
	for name, src := range incrementalPrograms {
		t.Run(name, func(t *testing.T) {
			u := mustUnit(t, src)
			m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{})
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			want := scratchFixpoint(t, u.Program(), u.Facts, 1)
			diffDump(t, name, want, dumpLive(m.DB()))
		})
	}
}

// TestIncrementalDifferential interleaves randomized asserts and retracts
// and checks after every batch that the materialized state equals a
// from-scratch fixpoint over the surviving base facts — across program
// families and from-scratch worker counts 1 and 8 (the reference side;
// the maintenance waves themselves are sequential by design).
func TestIncrementalDifferential(t *testing.T) {
	pool := func(rng *rand.Rand, preds []string, n int) []ast.Atom {
		var out []ast.Atom
		for i := 0; i < n; i++ {
			pred := preds[rng.Intn(len(preds))]
			switch pred {
			case "m":
				out = append(out, atom(t, fmt.Sprintf("m(%d)", rng.Intn(8))))
			case "zero":
				out = append(out, atom(t, fmt.Sprintf("zero(%d)", rng.Intn(3))))
			case "succ":
				a := rng.Intn(8)
				out = append(out, atom(t, fmt.Sprintf("succ(%d,%d)", a, a+1)))
			default:
				out = append(out, atom(t, fmt.Sprintf("%s(%d,%d)", pred, rng.Intn(8), rng.Intn(8))))
			}
		}
		return out
	}
	edbPreds := map[string][]string{
		"tc":            {"e"},
		"layered":       {"e"},
		"derivable-edb": {"seed", "m"},
		"mutual":        {"zero", "succ"},
	}
	for name, src := range incrementalPrograms {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/w=%d", name, workers), func(t *testing.T) {
				u := mustUnit(t, src)
				rng := rand.New(rand.NewSource(int64(len(name))*31 + int64(workers)))
				m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{})
				if err != nil {
					t.Fatalf("materialize: %v", err)
				}
				live := map[string]ast.Atom{}
				for _, f := range u.Facts {
					live[f.String()] = f
				}
				for batch := 0; batch < 25; batch++ {
					var assert, retract []ast.Atom
					for _, a := range pool(rng, edbPreds[name], 1+rng.Intn(4)) {
						assert = append(assert, a)
					}
					// Retract a mix of live facts and never-asserted ones.
					for k := range live {
						if rng.Intn(4) == 0 {
							retract = append(retract, live[k])
						}
						if len(retract) >= 3 {
							break
						}
					}
					if rng.Intn(3) == 0 {
						retract = append(retract, pool(rng, edbPreds[name], 1)...)
					}
					epochBefore := m.Epoch()
					st, err := m.Apply(context.Background(), assert, retract)
					if err != nil {
						t.Fatalf("batch %d: %v", batch, err)
					}
					if m.Epoch() != epochBefore+1 {
						t.Fatalf("batch %d: epoch %d -> %d, want +1", batch, epochBefore, m.Epoch())
					}
					// Track the surviving base set the same way.
					for _, a := range retract {
						delete(live, a.String())
					}
					for _, a := range assert {
						live[a.String()] = a
					}
					var facts []ast.Atom
					for _, a := range live {
						facts = append(facts, a)
					}
					want := scratchFixpoint(t, u.Program(), facts, workers)
					diffDump(t, fmt.Sprintf("batch %d (stats %+v)", batch, st), want, dumpLive(m.DB()))
					if t.Failed() {
						t.FailNow()
					}
				}
			})
		}
	}
}

// TestRetractionEdgeCases covers the satellite checklist: retracting a
// never-asserted fact, double-retract, and retracting an EDB fact that is
// also derivable by a rule.
func TestRetractionEdgeCases(t *testing.T) {
	u := mustUnit(t, `
		e(X,Y) :- seed(X,Y).
		t(X,Y) :- e(X,Y).
		seed(1,2).
		e(7,8).
		?- t(X,Y).`)
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ctx := context.Background()

	t.Run("never-asserted", func(t *testing.T) {
		st, err := m.Apply(ctx, nil, []ast.Atom{atom(t, "e(99,99)")})
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if st.NoopRetracts != 1 || st.Retracted != 0 {
			t.Fatalf("stats %+v, want 1 noop retract", st)
		}
	})

	t.Run("derivable-edb-fact", func(t *testing.T) {
		// Assert e(1,2), which rule e :- seed already derives: presence
		// must survive retracting either support alone.
		if _, err := m.Apply(ctx, []ast.Atom{atom(t, "e(1,2)")}, nil); err != nil {
			t.Fatalf("assert: %v", err)
		}
		if _, err := m.Apply(ctx, nil, []ast.Atom{atom(t, "e(1,2)")}); err != nil {
			t.Fatalf("retract: %v", err)
		}
		if !dumpLive(m.DB())["t(1,2)"] {
			t.Fatalf("t(1,2) lost: still derivable via seed(1,2)")
		}
		// Now retract the seed too; the fact must die.
		if _, err := m.Apply(ctx, nil, []ast.Atom{atom(t, "seed(1,2)")}); err != nil {
			t.Fatalf("retract seed: %v", err)
		}
		if got := dumpLive(m.DB()); got["t(1,2)"] || got["e(1,2)"] {
			t.Fatalf("e/t(1,2) survive with no support: %v", got)
		}
	})

	t.Run("double-retract", func(t *testing.T) {
		if st, err := m.Apply(ctx, nil, []ast.Atom{atom(t, "e(7,8)")}); err != nil || st.Retracted != 1 {
			t.Fatalf("first retract: st=%+v err=%v", st, err)
		}
		st, err := m.Apply(ctx, nil, []ast.Atom{atom(t, "e(7,8)")})
		if err != nil {
			t.Fatalf("second retract: %v", err)
		}
		if st.NoopRetracts != 1 || st.Retracted != 0 {
			t.Fatalf("second retract stats %+v, want noop", st)
		}
	})
}

// TestMutationValidation pins the ErrMutation surface: non-ground atoms,
// derived predicates, and arity conflicts are rejected without a state or
// epoch change.
func TestMutationValidation(t *testing.T) {
	u := mustUnit(t, "t(X,Y) :- e(X,Y). e(1,2). ?- t(X,Y).")
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	before := dumpLive(m.DB())
	epoch := m.Epoch()
	cases := []ast.Atom{
		atom(t, "e(X,1)"),   // non-ground
		atom(t, "e(1,2,3)"), // arity conflict
	}
	for _, bad := range cases {
		if _, err := m.Apply(context.Background(), []ast.Atom{bad}, nil); !errors.Is(err, ErrMutation) {
			t.Fatalf("assert %s: err=%v, want ErrMutation", bad, err)
		}
	}
	if m.Epoch() != epoch || m.Dirty() {
		t.Fatalf("rejected batches changed epoch/dirty: epoch %d->%d dirty=%v", epoch, m.Epoch(), m.Dirty())
	}
	diffDump(t, "after rejects", before, dumpLive(m.DB()))
}

// TestApplyRollbackOnPanic arms the mutation-path injection points so a
// batch dies mid-maintenance, then checks the epoch did not advance, the
// observable state rolled back to the previous batch, and the next clean
// Apply recovers (rebuild from the restored base) — PR 5's recover
// barriers extended to the mutation path.
func TestApplyRollbackOnPanic(t *testing.T) {
	u := mustUnit(t, `
		t(X,Y) :- e(X,Y).
		t(X,Y) :- e(X,W), t(W,Y).
		e(1,2). e(2,3).
		?- t(X,Y).`)
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ctx := context.Background()
	if _, err := m.Apply(ctx, []ast.Atom{atom(t, "e(3,4)")}, nil); err != nil {
		t.Fatalf("warm apply: %v", err)
	}
	stable := dumpLive(m.DB())
	epoch := m.Epoch()

	disable := faultinject.Enable(faultinject.Config{
		Seed:      7,
		MaxPeriod: 1,
		Points:    []faultinject.Point{faultinject.DeltaWave},
	})
	_, err = m.Apply(ctx, []ast.Atom{atom(t, "e(4,5)")}, []ast.Atom{atom(t, "e(1,2)")})
	disable()
	if err == nil {
		t.Fatalf("apply under armed DeltaWave: want error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want *PanicError wrapping ErrInternal", err)
	}
	if m.Epoch() != epoch {
		t.Fatalf("failed batch advanced epoch %d -> %d", epoch, m.Epoch())
	}
	if !m.Dirty() {
		t.Fatalf("failed batch did not poison the materialization")
	}

	// The next batch rebuilds from the rolled-back base and then applies
	// cleanly: observable state is the stable set plus the new fact's
	// consequences, never the half-applied batch.
	if _, err := m.Apply(ctx, []ast.Atom{atom(t, "e(9,10)")}, nil); err != nil {
		t.Fatalf("recovery apply: %v", err)
	}
	if m.Dirty() {
		t.Fatalf("recovery apply left the materialization dirty")
	}
	want := map[string]bool{}
	for f := range stable {
		want[f] = true
	}
	want["e(9,10)"] = true
	want["t(9,10)"] = true
	diffDump(t, "after recovery", want, dumpLive(m.DB()))
}

// TestApplyContextCanceled checks a canceled batch rolls back like a
// panic: no epoch advance, dirty, recoverable.
func TestApplyContextCanceled(t *testing.T) {
	u := mustUnit(t, `
		t(X,Y) :- e(X,Y).
		t(X,Y) :- e(X,W), t(W,Y).
		?- t(X,Y).`)
	var facts []ast.Atom
	for i := 0; i < 64; i++ {
		facts = append(facts, atom(t, fmt.Sprintf("e(%d,%d)", i, i+1)))
	}
	m, err := Materialize(u.Program(), facts, MaterializeOptions{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	epoch := m.Epoch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.Apply(ctx, []ast.Atom{atom(t, "e(64,65)")}, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if m.Epoch() != epoch {
		t.Fatalf("canceled batch advanced epoch")
	}
	if _, err := m.Apply(context.Background(), []ast.Atom{atom(t, "e(64,65)")}, nil); err != nil {
		t.Fatalf("recovery apply: %v", err)
	}
	want := scratchFixpoint(t, u.Program(), append(facts, atom(t, "e(64,65)")), 1)
	diffDump(t, "after cancel+recover", want, dumpLive(m.DB()))
}

// TestMaterializeBudget pins ErrBudgetExceeded on a batch whose cascade
// exceeds MaxFacts.
func TestMaterializeBudget(t *testing.T) {
	u := mustUnit(t, `
		t(X,Y) :- e(X,Y).
		t(X,Y) :- e(X,W), t(W,Y).
		?- t(X,Y).`)
	var facts []ast.Atom
	for i := 0; i < 40; i++ {
		facts = append(facts, atom(t, fmt.Sprintf("e(%d,%d)", i, i+1)))
	}
	if _, err := Materialize(u.Program(), facts, MaterializeOptions{MaxFacts: 10}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("build budget: err = %v, want ErrBudgetExceeded", err)
	}
	m, err := Materialize(u.Program(), facts[:4], MaterializeOptions{MaxFacts: 30})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	// Connecting a long chain through one edge blows the per-batch budget.
	for i := 4; i < 40; i++ {
		if _, err := m.Apply(context.Background(), []ast.Atom{atom(t, fmt.Sprintf("e(%d,%d)", i, i+1))}, nil); err != nil {
			if errors.Is(err, ErrBudgetExceeded) {
				return
			}
			t.Fatalf("apply: %v", err)
		}
	}
	t.Fatalf("no batch exceeded MaxFacts=30")
}

// TestEpochStamps checks rows carry the epoch of the batch that inserted
// them.
func TestEpochStamps(t *testing.T) {
	u := mustUnit(t, "t(X,Y) :- e(X,Y). e(1,2). ?- t(X,Y).")
	m, err := Materialize(u.Program(), u.Facts, MaterializeOptions{StartEpoch: 5})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if _, err := m.Apply(context.Background(), []ast.Atom{atom(t, "e(3,4)")}, nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	rel := m.DB().Lookup("t")
	tup := func(a, b int) []Val {
		return []Val{m.DB().Store.Int(a), m.DB().Store.Int(b)}
	}
	row12, ok12 := rel.findRow(tup(1, 2))
	row34, ok34 := rel.findRow(tup(3, 4))
	if !ok12 || !ok34 {
		t.Fatalf("missing t rows")
	}
	if e := rel.RowEpoch(row12); e != 5 {
		t.Errorf("t(1,2) epoch = %d, want 5 (build epoch)", e)
	}
	if e := rel.RowEpoch(row34); e != 6 {
		t.Errorf("t(3,4) epoch = %d, want 6 (first batch)", e)
	}
	if m.Epoch() != 6 {
		t.Errorf("epoch = %d, want 6", m.Epoch())
	}
}
