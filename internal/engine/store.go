package engine

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"factorlog/internal/ast"
)

// Val is a handle to an interned ground term. Two Vals from the same Store
// are equal if and only if the terms they denote are equal.
type Val int32

// NoVal is an invalid Val used as a sentinel for unbound slots.
const NoVal Val = -1

type entry struct {
	functor string
	args    []Val // nil for constants
}

// Entries live in fixed-size chunks so that readers can resolve a Val
// without locking: a published Val's chunk is never moved, and the chunk
// spine is swapped atomically when it grows. Interning (the only mutation)
// is serialized by a mutex.
const (
	storeChunkBits = 12
	storeChunkSize = 1 << storeChunkBits
)

type storeChunk [storeChunkSize]entry

// Store interns ground terms. The zero value is not usable; call NewStore.
//
// Interning (Const, Compound, and everything built on them) is safe for
// concurrent use; the read-side accessors (IsConst, Functor, Args, String,
// ...) are lock-free and may run concurrently with interning, provided each
// Val read was published to the reading goroutine by a synchronizing
// operation — the parallel evaluator's round barriers provide exactly that.
type Store struct {
	mu        sync.Mutex
	consts    map[string]Val
	compounds map[string]Val
	chunks    atomic.Pointer[[]*storeChunk]
	n         int // interned entries; guarded by mu
	keyBuf    []byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		consts:    make(map[string]Val),
		compounds: make(map[string]Val),
	}
	spine := []*storeChunk{}
	s.chunks.Store(&spine)
	return s
}

// entry resolves a published Val without locking.
func (s *Store) entry(v Val) *entry {
	spine := *s.chunks.Load()
	return &spine[v>>storeChunkBits][v&(storeChunkSize-1)]
}

// addEntry appends e and returns its Val. Caller must hold s.mu.
func (s *Store) addEntry(e entry) Val {
	if s.n&(storeChunkSize-1) == 0 {
		old := *s.chunks.Load()
		spine := make([]*storeChunk, len(old)+1)
		copy(spine, old)
		spine[len(old)] = new(storeChunk)
		s.chunks.Store(&spine)
	}
	spine := *s.chunks.Load()
	spine[s.n>>storeChunkBits][s.n&(storeChunkSize-1)] = e
	v := Val(s.n)
	s.n++
	return v
}

// Size returns the number of distinct interned terms.
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Const interns a constant symbol.
func (s *Store) Const(name string) Val {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.consts[name]; ok {
		return v
	}
	v := s.addEntry(entry{functor: name})
	s.consts[name] = v
	return v
}

// Compound interns a compound term from already-interned arguments. The args
// slice is copied.
func (s *Store) Compound(functor string, args ...Val) Val {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := s.compoundKey(functor, args)
	if v, ok := s.compounds[key]; ok {
		return v
	}
	cp := make([]Val, len(args))
	copy(cp, args)
	v := s.addEntry(entry{functor: functor, args: cp})
	s.compounds[key] = v
	return v
}

func (s *Store) compoundKey(functor string, args []Val) string {
	b := s.keyBuf[:0]
	b = append(b, functor...)
	b = append(b, 0)
	for _, a := range args {
		b = binary.AppendVarint(b, int64(a))
	}
	s.keyBuf = b
	return string(b)
}

// Nil returns the interned empty list.
func (s *Store) Nil() Val { return s.Const(ast.NilName) }

// Cons returns the interned list cell [head|tail].
func (s *Store) Cons(head, tail Val) Val { return s.Compound(ast.ConsFunctor, head, tail) }

// List interns a proper list of the given elements.
func (s *Store) List(elems ...Val) Val {
	v := s.Nil()
	for i := len(elems) - 1; i >= 0; i-- {
		v = s.Cons(elems[i], v)
	}
	return v
}

// Int interns the decimal rendering of n as a constant. strconv.Itoa
// renders small ints without the fmt machinery (no interface boxing, no
// verb parsing) — EDB loaders call this per fact, so it is warm.
func (s *Store) Int(n int) Val { return s.Const(strconv.Itoa(n)) }

// IsConst reports whether v denotes a constant.
func (s *Store) IsConst(v Val) bool { return s.entry(v).args == nil }

// Functor returns the constant name or compound functor of v.
func (s *Store) Functor(v Val) string { return s.entry(v).functor }

// Args returns the argument handles of v (nil for constants). The returned
// slice must not be modified.
func (s *Store) Args(v Val) []Val { return s.entry(v).args }

// FromAST interns a ground ast.Term. It returns an error if t contains
// variables.
func (s *Store) FromAST(t ast.Term) (Val, error) {
	switch t.Kind {
	case ast.Var:
		return NoVal, fmt.Errorf("cannot intern non-ground term: variable %s", t.Functor)
	case ast.Const:
		return s.Const(t.Functor), nil
	default:
		args := make([]Val, len(t.Args))
		for i, a := range t.Args {
			v, err := s.FromAST(a)
			if err != nil {
				return NoVal, err
			}
			args[i] = v
		}
		return s.Compound(t.Functor, args...), nil
	}
}

// MustFromAST is FromAST, panicking on variables; for tests and literals.
func (s *Store) MustFromAST(t ast.Term) Val {
	v, err := s.FromAST(t)
	if err != nil {
		panic(err)
	}
	return v
}

// ToAST reconstructs the ast.Term denoted by v.
func (s *Store) ToAST(v Val) ast.Term {
	e := s.entry(v)
	if e.args == nil {
		return ast.C(e.functor)
	}
	args := make([]ast.Term, len(e.args))
	for i, a := range e.args {
		args[i] = s.ToAST(a)
	}
	return ast.Fn(e.functor, args...)
}

// String renders v in surface syntax (lists re-sugared).
func (s *Store) String(v Val) string {
	var b strings.Builder
	s.write(&b, v)
	return b.String()
}

func (s *Store) write(b *strings.Builder, v Val) {
	e := s.entry(v)
	switch {
	case e.args == nil:
		b.WriteString(e.functor)
	case e.functor == ast.ConsFunctor && len(e.args) == 2:
		b.WriteByte('[')
		s.write(b, e.args[0])
		rest := e.args[1]
		for {
			re := s.entry(rest)
			if re.functor == ast.ConsFunctor && len(re.args) == 2 {
				b.WriteByte(',')
				s.write(b, re.args[0])
				rest = re.args[1]
				continue
			}
			break
		}
		if re := s.entry(rest); re.functor != ast.NilName || re.args != nil {
			b.WriteByte('|')
			s.write(b, rest)
		}
		b.WriteByte(']')
	default:
		b.WriteString(e.functor)
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteByte(',')
			}
			s.write(b, a)
		}
		b.WriteByte(')')
	}
}

// TupleString renders a tuple as (v1,...,vn).
func (s *Store) TupleString(tuple []Val) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		s.write(&b, v)
	}
	b.WriteByte(')')
	return b.String()
}
