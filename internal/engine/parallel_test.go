package engine

import (
	"errors"
	"math/rand"
	"testing"

	"factorlog/internal/parser"
)

// TestParallelMatchesSequentialRandomGraphs is the parallel-correctness
// property test: over random EDBs, the parallel stratified evaluator
// (Workers: 8) must produce the same answer set and the same Stats.Derived
// as the sequential semi-naive evaluator (Workers: 1). Run under -race this
// also exercises the concurrent Store and frozen-relation probes.
func TestParallelMatchesSequentialRandomGraphs(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		edges := make([][2]int, 0)
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		load := func() *DB {
			db := NewDB()
			for _, e := range edges {
				db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
			}
			return db
		}
		dbSeq, dbPar := load(), load()
		resSeq, err := Eval(p, dbSeq, Options{Strategy: SemiNaive, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		resPar, err := Eval(p, dbPar, Options{Strategy: SemiNaive, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if resSeq.Stats.Derived != resPar.Stats.Derived {
			t.Fatalf("seed %d: Derived differs: sequential %d, parallel %d",
				seed, resSeq.Stats.Derived, resPar.Stats.Derived)
		}
		q := parser.MustParseAtom("t(X, Y)")
		sSeq, _ := AnswerSet(dbSeq, q)
		sPar, _ := AnswerSet(dbPar, q)
		if len(sSeq) != len(sPar) {
			t.Fatalf("seed %d: answer sets differ: %d vs %d", seed, len(sSeq), len(sPar))
		}
		for k := range sSeq {
			if !sPar[k] {
				t.Fatalf("seed %d: %s missing from parallel answers", seed, k)
			}
		}
	}
}

// TestParallelStratifiedMagic runs the same-generation magic program (three
// strata: magic fixpoint, answer fixpoint, query projection) at several
// worker counts and checks the answers against the sequential evaluator.
func TestParallelStratifiedMagic(t *testing.T) {
	src := `
		m_sg_bf(john).
		m_sg_bf(U) :- m_sg_bf(X), up(X,U).
		sg_bf(X,Y) :- m_sg_bf(X), flat(X,Y).
		sg_bf(X,Y) :- m_sg_bf(X), up(X,U), sg_bf(U,V), down(V,Y).
		query(Y) :- sg_bf(john,Y).
	`
	load := func() *DB {
		db := NewDB()
		c := db.Store.Const
		for _, e := range [][3]string{
			{"up", "john", "anne"}, {"up", "anne", "root"},
			{"flat", "root", "peer"}, {"flat", "anne", "maria"},
			{"down", "peer", "lea"}, {"down", "maria", "bill"},
			{"down", "lea", "sam"},
		} {
			db.MustInsert(e[0], c(e[1]), c(e[2]))
		}
		return db
	}
	p := parser.MustParseProgram(src)
	dbSeq := load()
	resSeq, err := Eval(p, dbSeq, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	q := parser.MustParseAtom("query(Y)")
	want, _ := AnswerSet(dbSeq, q)
	if len(want) == 0 {
		t.Fatal("sequential run produced no answers; bad fixture")
	}
	for _, workers := range []int{2, 4, 8} {
		dbPar := load()
		resPar, err := Eval(p, dbPar, Options{Strategy: SemiNaive, Workers: workers, Trace: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if resPar.Stats.Derived != resSeq.Stats.Derived {
			t.Errorf("workers=%d: Derived = %d, want %d", workers, resPar.Stats.Derived, resSeq.Stats.Derived)
		}
		got, _ := AnswerSet(dbPar, q)
		if len(got) != len(want) {
			t.Errorf("workers=%d: %d answers, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("workers=%d: missing answer %s", workers, k)
			}
		}
		if len(resPar.Stats.Strata) != 3 {
			t.Errorf("workers=%d: %d strata traced, want 3", workers, len(resPar.Stats.Strata))
		}
		if len(resPar.Stats.Workers) != workers {
			t.Errorf("workers=%d: %d worker rows traced", workers, len(resPar.Stats.Workers))
		}
	}
}

// TestParallelCompoundHeads drives concurrent interning through the shared
// store: a sharded pass derives compound head terms from every worker.
func TestParallelCompoundHeads(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		pair(f(X, Y)) :- t(X, Y).
	`)
	load := func() *DB {
		db := NewDB()
		for i := 0; i < 40; i++ {
			db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		}
		return db
	}
	dbSeq, dbPar := load(), load()
	resSeq, err := Eval(p, dbSeq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := Eval(p, dbPar, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resSeq.Stats.Derived != resPar.Stats.Derived {
		t.Fatalf("Derived differs: sequential %d, parallel %d", resSeq.Stats.Derived, resPar.Stats.Derived)
	}
	q := parser.MustParseAtom("pair(P)")
	sSeq, _ := AnswerSet(dbSeq, q)
	sPar, _ := AnswerSet(dbPar, q)
	if len(sSeq) != len(sPar) {
		t.Fatalf("answer sets differ: %d vs %d", len(sSeq), len(sPar))
	}
	for k := range sSeq {
		if !sPar[k] {
			t.Fatalf("%s missing from parallel answers", k)
		}
	}
}

// TestOptionsValidation locks the up-front Options check: negative knobs
// are rejected with ErrBadOptions before any evaluation work happens.
func TestOptionsValidation(t *testing.T) {
	p := parser.MustParseProgram(`t(X, Y) :- e(X, Y).`)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"negative workers", Options{Workers: -1}},
		{"negative max iterations", Options{MaxIterations: -5}},
		{"negative max facts", Options{MaxFacts: -2}},
	} {
		db := NewDB()
		db.MustInsert("e", db.Store.Int(1), db.Store.Int(2))
		_, err := Eval(p, db, tc.opts)
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", tc.name, err)
		}
	}
	// The zero value and explicit sequential/parallel settings stay valid.
	for _, opts := range []Options{{}, {Workers: 1}, {Workers: 8}} {
		db := NewDB()
		db.MustInsert("e", db.Store.Int(1), db.Store.Int(2))
		if _, err := Eval(p, db, opts); err != nil {
			t.Errorf("opts %+v: unexpected error %v", opts, err)
		}
	}
}

// TestParallelBudgets checks that the parallel evaluator enforces both
// budget knobs with the shared ErrBudgetExceeded sentinel.
func TestParallelBudgets(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- t(X, W), e(W, Y).
	`)
	load := func() *DB {
		db := NewDB()
		for i := 0; i < 30; i++ {
			db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		}
		return db
	}
	if _, err := Eval(p, load(), Options{Workers: 4, MaxIterations: 3}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("MaxIterations: err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := Eval(p, load(), Options{Workers: 4, MaxFacts: 10}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("MaxFacts: err = %v, want ErrBudgetExceeded", err)
	}
}
