package engine

import (
	"errors"
	"fmt"
	"math"

	"factorlog/internal/ast"
)

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive evaluates each rule once per recursive body occurrence per
	// round, with the classic delta discipline: occurrences before the
	// delta position range over P_{r-1}, the delta position over the facts
	// derived in round r, and occurrences after it over P_r. Tuples carry
	// their insertion round, so no relation copying is needed.
	SemiNaive Strategy = iota
	// Naive re-evaluates every rule against the full database each round.
	Naive
)

func (s Strategy) String() string {
	switch s {
	case SemiNaive:
		return "semi-naive"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrBudget is returned (wrapped) when evaluation exceeds MaxIterations or
// MaxFacts; used to bound deliberately divergent programs such as the
// Counting transformation of a left-linear recursion (§6.4).
var ErrBudget = errors.New("evaluation budget exceeded")

// Options configures evaluation.
type Options struct {
	Strategy Strategy
	// MaxIterations bounds fixpoint rounds; 0 means unlimited.
	MaxIterations int
	// MaxFacts bounds the total number of derived facts; 0 means unlimited.
	MaxFacts int
	// Provenance records one derivation per fact (Definition 2.1 trees).
	Provenance bool
	// ReorderJoins lets the compiler greedily reorder body literals so the
	// most-bound literal runs first. Off by default: the paper's cost
	// discussions assume the written left-to-right order.
	ReorderJoins bool
}

// Stats reports the work an evaluation performed.
type Stats struct {
	// Inferences counts successful rule-body instantiations, including
	// those that re-derive known facts. This is the paper's cost measure.
	Inferences int
	// Derived counts distinct facts added by rules (excludes EDB facts).
	Derived int
	// Iterations counts fixpoint rounds.
	Iterations int
}

// Result is the outcome of an evaluation. The DB passed to Eval is mutated
// in place and also referenced here.
type Result struct {
	DB    *DB
	Stats Stats
	Prov  *Provenance // nil unless Options.Provenance
}

// Eval computes the least fixpoint of program p over db (which supplies the
// EDB and receives all derived facts).
func Eval(p *ast.Program, db *DB, opts Options) (*Result, error) {
	rules, err := compileProgram(p, db.Store, opts.ReorderJoins)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		db:    db,
		rules: rules,
		opts:  opts,
	}
	if opts.Provenance {
		ev.prov = NewProvenance(p)
	}
	if err := ev.run(); err != nil {
		return nil, err
	}
	return &Result{DB: db, Stats: ev.stats, Prov: ev.prov}, nil
}

const noLimit = int32(math.MaxInt32)

// roundRange restricts a body literal to tuples inserted in [lo, hi].
type roundRange struct{ lo, hi int32 }

var unrestricted = roundRange{0, noLimit}

type evaluator struct {
	db    *DB
	rules []*compiledRule
	opts  Options
	stats Stats
	prov  *Provenance

	curRound  int32
	newCounts map[string]int // facts stamped curRound+1, by predicate

	// scratch per-derivation children, reused.
	children []FactID
	// per-call literal round limits, reused.
	limits []roundRange
}

func (ev *evaluator) run() error {
	// Materialize head and body relations up front so empty IDB predicates
	// exist and arities are checked.
	for _, r := range ev.rules {
		if _, err := ev.db.Rel(r.headPred, len(r.headArgs)); err != nil {
			return err
		}
		for _, l := range r.body {
			if _, err := ev.db.Rel(l.pred, l.arity); err != nil {
				return err
			}
		}
	}

	// Round 0: evaluate every rule against the full database (covers
	// bodyless rules, rules over EDB only, and pre-seeded IDB facts).
	ev.curRound = 0
	ev.newCounts = map[string]int{}
	for _, r := range ev.rules {
		if err := ev.evalRule(r, -1); err != nil {
			return err
		}
	}
	ev.stats.Iterations++

	for total(ev.newCounts) > 0 {
		if ev.opts.MaxIterations > 0 && ev.stats.Iterations >= ev.opts.MaxIterations {
			return fmt.Errorf("%w: %d iterations", ErrBudget, ev.stats.Iterations)
		}
		deltaCounts := ev.newCounts
		ev.newCounts = map[string]int{}
		ev.curRound++
		switch ev.opts.Strategy {
		case Naive:
			for _, r := range ev.rules {
				if err := ev.evalRule(r, -1); err != nil {
					return err
				}
			}
		default: // SemiNaive
			for _, r := range ev.rules {
				for _, occ := range r.idbOccs {
					if deltaCounts[r.body[occ].pred] == 0 {
						continue
					}
					if err := ev.evalRule(r, occ); err != nil {
						return err
					}
				}
			}
		}
		ev.stats.Iterations++
	}
	return nil
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// evalRule evaluates one rule. With deltaOcc >= 0 the literal at that body
// position ranges over the current round's delta and the other IDB
// occurrences over P_{r-1} (before it) / P_r (after it).
func (ev *evaluator) evalRule(r *compiledRule, deltaOcc int) error {
	if cap(ev.limits) < len(r.body) {
		ev.limits = make([]roundRange, len(r.body))
	}
	ev.limits = ev.limits[:len(r.body)]
	for i := range ev.limits {
		ev.limits[i] = unrestricted
	}
	if deltaOcc >= 0 {
		r0 := ev.curRound
		for _, occ := range r.idbOccs {
			switch {
			case occ < deltaOcc:
				ev.limits[occ] = roundRange{0, r0 - 1}
			case occ == deltaOcc:
				ev.limits[occ] = roundRange{r0, r0}
			default:
				ev.limits[occ] = roundRange{0, r0}
			}
		}
	}

	slots := make([]Val, r.nslots)
	for i := range slots {
		slots[i] = NoVal
	}
	ev.children = ev.children[:0]
	return ev.join(r, 0, slots, nil)
}

func (ev *evaluator) join(r *compiledRule, li int, slots []Val, trail []int) error {
	if li == len(r.body) {
		return ev.emit(r, slots)
	}
	spec := &r.body[li]
	rel := ev.db.Lookup(spec.pred)
	if rel == nil || rel.Len() == 0 {
		return nil
	}
	limit := ev.limits[li]

	childMark := len(ev.children)
	tryPos := func(pos int32) error {
		if rnd := rel.Round(pos); rnd < limit.lo || rnd > limit.hi {
			return nil
		}
		tuple := rel.Tuple(pos)
		mark := len(trail)
		ok := true
		for _, col := range spec.freeCols {
			if !matchPattern(spec.args[col], tuple[col], slots, &trail, ev.db.Store) {
				ok = false
				break
			}
		}
		if ok {
			if ev.prov != nil {
				ev.children = append(ev.children[:childMark],
					ev.prov.factID(spec.pred, tuple))
			}
			if err := ev.join(r, li+1, slots, trail); err != nil {
				return err
			}
		}
		trail = undoTrail(slots, trail, mark)
		return nil
	}

	if len(spec.boundCols) > 0 {
		key := make([]Val, len(spec.boundCols))
		for i, col := range spec.boundCols {
			key[i] = evalPattern(spec.args[col], slots, ev.db.Store)
		}
		for _, pos := range rel.Probe(spec.boundCols, key) {
			if err := tryPos(pos); err != nil {
				return err
			}
		}
		return nil
	}
	for pos := int32(0); pos < int32(rel.Len()); pos++ {
		if err := tryPos(pos); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) emit(r *compiledRule, slots []Val) error {
	ev.stats.Inferences++
	tuple := make([]Val, len(r.headArgs))
	for i, p := range r.headArgs {
		tuple[i] = evalPattern(p, slots, ev.db.Store)
	}
	full := ev.db.Lookup(r.headPred)
	if !full.InsertRound(tuple, ev.curRound+1) {
		return nil
	}
	ev.newCounts[r.headPred]++
	ev.stats.Derived++
	if ev.prov != nil {
		ev.prov.record(r, tuple, ev.children)
	}
	if ev.opts.MaxFacts > 0 && ev.stats.Derived > ev.opts.MaxFacts {
		return fmt.Errorf("%w: %d derived facts", ErrBudget, ev.stats.Derived)
	}
	return nil
}

// Answers returns the tuples of query's predicate that match the query atom
// (constants and repeated variables filter; distinct variables project). The
// result preserves relation insertion order.
func Answers(db *DB, query ast.Atom) ([][]Val, error) {
	rel := db.Lookup(query.Pred)
	if rel == nil {
		return nil, nil
	}
	if rel.Arity() != len(query.Args) {
		return nil, fmt.Errorf("query %s has arity %d but relation has arity %d",
			query.Pred, len(query.Args), rel.Arity())
	}
	c := &compiler{store: db.Store, idb: map[string]bool{}, slots: map[string]int{}}
	pats := make([]pattern, len(query.Args))
	for i, t := range query.Args {
		pats[i] = c.compileTerm(t)
	}
	slots := make([]Val, c.n)
	var out [][]Val
	for _, tuple := range rel.Tuples() {
		for i := range slots {
			slots[i] = NoVal
		}
		var trail []int
		ok := true
		for i, p := range pats {
			if !matchPattern(p, tuple[i], slots, &trail, db.Store) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tuple)
		}
	}
	return out, nil
}

// AnswerSet renders the answers to query as a sorted set of strings, one
// per matching tuple; convenient for equivalence tests across strategies.
func AnswerSet(db *DB, query ast.Atom) (map[string]bool, error) {
	tuples, err := Answers(db, query)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		out[db.Store.TupleString(t)] = true
	}
	return out, nil
}

// LoadFacts interns and inserts ground atoms into db.
func LoadFacts(db *DB, facts []ast.Atom) error {
	for _, f := range facts {
		tuple := make([]Val, len(f.Args))
		for i, t := range f.Args {
			v, err := db.Store.FromAST(t)
			if err != nil {
				return fmt.Errorf("fact %s: %w", f, err)
			}
			tuple[i] = v
		}
		if _, err := db.Insert(f.Pred, tuple...); err != nil {
			return err
		}
	}
	return nil
}
