package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/obsv"
)

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive evaluates each rule once per recursive body occurrence per
	// round, with the classic delta discipline: occurrences before the
	// delta position range over P_{r-1}, the delta position over the facts
	// derived in round r, and occurrences after it over P_r. Tuples carry
	// their insertion round, so no relation copying is needed.
	SemiNaive Strategy = iota
	// Naive re-evaluates every rule against the full database each round.
	Naive
)

func (s Strategy) String() string {
	switch s {
	case SemiNaive:
		return "semi-naive"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrBudgetExceeded is returned (wrapped) when evaluation exceeds
// MaxIterations or MaxFacts; used to bound deliberately divergent programs
// such as the Counting transformation of a left-linear recursion (§6.4).
// Callers distinguish budget stops from real failures with errors.Is.
var ErrBudgetExceeded = errors.New("evaluation budget exceeded")

// ErrBudget is the former name of ErrBudgetExceeded.
//
// Deprecated: use ErrBudgetExceeded.
var ErrBudget = ErrBudgetExceeded

// Options configures evaluation.
type Options struct {
	Strategy Strategy
	// MaxIterations bounds fixpoint rounds; 0 means unlimited.
	MaxIterations int
	// MaxFacts bounds the total number of derived facts; 0 means unlimited.
	MaxFacts int
	// Provenance records one derivation per fact (Definition 2.1 trees).
	Provenance bool
	// ReorderJoins lets the compiler greedily reorder body literals so the
	// most-bound literal runs first. Off by default: the paper's cost
	// discussions assume the written left-to-right order.
	ReorderJoins bool
	// Trace records per-rule counters in Stats.Rules and per-round records
	// in Stats.Rounds. Off by default: with tracing off the hot path pays a
	// nil check per event and allocates nothing.
	Trace bool
}

// Stats reports the work an evaluation performed.
type Stats struct {
	// Inferences counts successful rule-body instantiations, including
	// those that re-derive known facts. This is the paper's cost measure.
	Inferences int
	// Derived counts distinct facts added by rules (excludes EDB facts).
	Derived int
	// Iterations counts fixpoint rounds.
	Iterations int
	// Rules holds per-rule counters, indexed by rule position in the
	// program; nil unless Options.Trace.
	Rules []obsv.RuleStats
	// Rounds holds one record per fixpoint round; nil unless Options.Trace.
	Rounds []obsv.RoundStats
}

// Result is the outcome of an evaluation. The DB passed to Eval is mutated
// in place and also referenced here.
type Result struct {
	DB    *DB
	Stats Stats
	Prov  *Provenance // nil unless Options.Provenance
}

// Eval computes the least fixpoint of program p over db (which supplies the
// EDB and receives all derived facts).
func Eval(p *ast.Program, db *DB, opts Options) (*Result, error) {
	rules, err := compileProgram(p, db.Store, opts.ReorderJoins)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		db:    db,
		rules: rules,
		opts:  opts,
	}
	if opts.Provenance {
		ev.prov = NewProvenance(p)
	}
	if opts.Trace {
		ev.trace = newEvalTrace(rules)
	}
	if err := ev.run(); err != nil {
		return nil, err
	}
	if ev.trace != nil {
		ev.stats.Rules = ev.trace.rules
		ev.stats.Rounds = ev.trace.rounds
	}
	return &Result{DB: db, Stats: ev.stats, Prov: ev.prov}, nil
}

const noLimit = int32(math.MaxInt32)

// roundRange restricts a body literal to tuples inserted in [lo, hi].
type roundRange struct{ lo, hi int32 }

var unrestricted = roundRange{0, noLimit}

type evaluator struct {
	db    *DB
	rules []*compiledRule
	opts  Options
	stats Stats
	prov  *Provenance

	curRound  int32
	newCounts map[string]int // facts stamped curRound+1, by predicate

	// scratch per-derivation children, reused.
	children []FactID
	// per-call literal round limits, reused.
	limits []roundRange

	// trace is non-nil only under Options.Trace; all recording helpers are
	// nil-guarded so the untraced hot path neither branches deeply nor
	// allocates.
	trace *evalTrace
}

// evalTrace accumulates the per-rule and per-round records behind
// Options.Trace.
type evalTrace struct {
	rules  []obsv.RuleStats
	rounds []obsv.RoundStats
	cur    *obsv.RuleStats // counters of the rule currently being evaluated
	start  time.Time       // current round's start
	fired  int             // rule evaluation passes this round
}

func newEvalTrace(rules []*compiledRule) *evalTrace {
	t := &evalTrace{rules: make([]obsv.RuleStats, len(rules))}
	for i, r := range rules {
		t.rules[i] = obsv.RuleStats{Index: i, Rule: r.label()}
	}
	return t
}

func (ev *evaluator) traceRoundStart() {
	if t := ev.trace; t != nil {
		t.start = time.Now()
		t.fired = 0
	}
}

func (ev *evaluator) traceRoundEnd() {
	if t := ev.trace; t != nil {
		t.rounds = append(t.rounds, obsv.RoundStats{
			Round:      int(ev.curRound),
			RulesFired: t.fired,
			NewFacts:   total(ev.newCounts),
			Wall:       time.Since(t.start),
		})
	}
}

func (ev *evaluator) traceRule(r *compiledRule) {
	if t := ev.trace; t != nil {
		t.cur = &t.rules[r.idx]
		t.cur.Firings++
		t.fired++
	}
}

func (ev *evaluator) run() error {
	// Materialize head and body relations up front so empty IDB predicates
	// exist and arities are checked.
	for _, r := range ev.rules {
		if _, err := ev.db.Rel(r.headPred, len(r.headArgs)); err != nil {
			return err
		}
		for _, l := range r.body {
			if _, err := ev.db.Rel(l.pred, l.arity); err != nil {
				return err
			}
		}
	}

	// Round 0: evaluate every rule against the full database (covers
	// bodyless rules, rules over EDB only, and pre-seeded IDB facts).
	ev.curRound = 0
	ev.newCounts = map[string]int{}
	ev.traceRoundStart()
	for _, r := range ev.rules {
		if err := ev.evalRule(r, -1); err != nil {
			return err
		}
	}
	ev.traceRoundEnd()
	ev.stats.Iterations++

	for total(ev.newCounts) > 0 {
		if ev.opts.MaxIterations > 0 && ev.stats.Iterations >= ev.opts.MaxIterations {
			return fmt.Errorf("%w: %d iterations", ErrBudgetExceeded, ev.stats.Iterations)
		}
		deltaCounts := ev.newCounts
		ev.newCounts = map[string]int{}
		ev.curRound++
		ev.traceRoundStart()
		switch ev.opts.Strategy {
		case Naive:
			for _, r := range ev.rules {
				if err := ev.evalRule(r, -1); err != nil {
					return err
				}
			}
		default: // SemiNaive
			for _, r := range ev.rules {
				for _, occ := range r.idbOccs {
					if deltaCounts[r.body[occ].pred] == 0 {
						continue
					}
					if err := ev.evalRule(r, occ); err != nil {
						return err
					}
				}
			}
		}
		ev.traceRoundEnd()
		ev.stats.Iterations++
	}
	return nil
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// evalRule evaluates one rule. With deltaOcc >= 0 the literal at that body
// position ranges over the current round's delta and the other IDB
// occurrences over P_{r-1} (before it) / P_r (after it).
func (ev *evaluator) evalRule(r *compiledRule, deltaOcc int) error {
	ev.traceRule(r)
	if cap(ev.limits) < len(r.body) {
		ev.limits = make([]roundRange, len(r.body))
	}
	ev.limits = ev.limits[:len(r.body)]
	for i := range ev.limits {
		ev.limits[i] = unrestricted
	}
	if deltaOcc >= 0 {
		r0 := ev.curRound
		for _, occ := range r.idbOccs {
			switch {
			case occ < deltaOcc:
				ev.limits[occ] = roundRange{0, r0 - 1}
			case occ == deltaOcc:
				ev.limits[occ] = roundRange{r0, r0}
			default:
				ev.limits[occ] = roundRange{0, r0}
			}
		}
	}

	slots := make([]Val, r.nslots)
	for i := range slots {
		slots[i] = NoVal
	}
	ev.children = ev.children[:0]
	return ev.join(r, 0, slots, nil)
}

func (ev *evaluator) join(r *compiledRule, li int, slots []Val, trail []int) error {
	if li == len(r.body) {
		return ev.emit(r, slots)
	}
	spec := &r.body[li]
	rel := ev.db.Lookup(spec.pred)
	if rel == nil || rel.Len() == 0 {
		return nil
	}
	limit := ev.limits[li]

	childMark := len(ev.children)
	tryPos := func(pos int32) error {
		if t := ev.trace; t != nil {
			t.cur.JoinProbes++
		}
		if rnd := rel.Round(pos); rnd < limit.lo || rnd > limit.hi {
			return nil
		}
		tuple := rel.Tuple(pos)
		mark := len(trail)
		ok := true
		for _, col := range spec.freeCols {
			if !matchPattern(spec.args[col], tuple[col], slots, &trail, ev.db.Store) {
				ok = false
				break
			}
		}
		if ok {
			if t := ev.trace; t != nil {
				t.cur.TuplesMatched++
			}
			if ev.prov != nil {
				ev.children = append(ev.children[:childMark],
					ev.prov.factID(spec.pred, tuple))
			}
			if err := ev.join(r, li+1, slots, trail); err != nil {
				return err
			}
		}
		trail = undoTrail(slots, trail, mark)
		return nil
	}

	if len(spec.boundCols) > 0 {
		key := make([]Val, len(spec.boundCols))
		for i, col := range spec.boundCols {
			key[i] = evalPattern(spec.args[col], slots, ev.db.Store)
		}
		for _, pos := range rel.Probe(spec.boundCols, key) {
			if err := tryPos(pos); err != nil {
				return err
			}
		}
		return nil
	}
	for pos := int32(0); pos < int32(rel.Len()); pos++ {
		if err := tryPos(pos); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) emit(r *compiledRule, slots []Val) error {
	ev.stats.Inferences++
	tuple := make([]Val, len(r.headArgs))
	for i, p := range r.headArgs {
		tuple[i] = evalPattern(p, slots, ev.db.Store)
	}
	full := ev.db.Lookup(r.headPred)
	if !full.InsertRound(tuple, ev.curRound+1) {
		if t := ev.trace; t != nil {
			t.cur.Duplicates++
		}
		return nil
	}
	if t := ev.trace; t != nil {
		t.cur.TuplesDerived++
	}
	ev.newCounts[r.headPred]++
	ev.stats.Derived++
	if ev.prov != nil {
		ev.prov.record(r, tuple, ev.children)
	}
	if ev.opts.MaxFacts > 0 && ev.stats.Derived > ev.opts.MaxFacts {
		return fmt.Errorf("%w: %d derived facts", ErrBudgetExceeded, ev.stats.Derived)
	}
	return nil
}

// Answers returns the tuples of query's predicate that match the query atom
// (constants and repeated variables filter; distinct variables project). The
// result preserves relation insertion order.
func Answers(db *DB, query ast.Atom) ([][]Val, error) {
	rel := db.Lookup(query.Pred)
	if rel == nil {
		return nil, nil
	}
	if rel.Arity() != len(query.Args) {
		return nil, fmt.Errorf("query %s has arity %d but relation has arity %d",
			query.Pred, len(query.Args), rel.Arity())
	}
	c := &compiler{store: db.Store, idb: map[string]bool{}, slots: map[string]int{}}
	pats := make([]pattern, len(query.Args))
	for i, t := range query.Args {
		pats[i] = c.compileTerm(t)
	}
	slots := make([]Val, c.n)
	var out [][]Val
	for _, tuple := range rel.Tuples() {
		for i := range slots {
			slots[i] = NoVal
		}
		var trail []int
		ok := true
		for i, p := range pats {
			if !matchPattern(p, tuple[i], slots, &trail, db.Store) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tuple)
		}
	}
	return out, nil
}

// AnswerSet renders the answers to query as a sorted set of strings, one
// per matching tuple; convenient for equivalence tests across strategies.
func AnswerSet(db *DB, query ast.Atom) (map[string]bool, error) {
	tuples, err := Answers(db, query)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		out[db.Store.TupleString(t)] = true
	}
	return out, nil
}

// LoadFacts interns and inserts ground atoms into db.
func LoadFacts(db *DB, facts []ast.Atom) error {
	for _, f := range facts {
		tuple := make([]Val, len(f.Args))
		for i, t := range f.Args {
			v, err := db.Store.FromAST(t)
			if err != nil {
				return fmt.Errorf("fact %s: %w", f, err)
			}
			tuple[i] = v
		}
		if _, err := db.Insert(f.Pred, tuple...); err != nil {
			return err
		}
	}
	return nil
}
