package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
	"factorlog/internal/trace"
)

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive evaluates each rule once per recursive body occurrence per
	// round, with the classic delta discipline: occurrences before the
	// delta position range over P_{r-1}, the delta position over the facts
	// derived in round r, and occurrences after it over P_r. Tuples carry
	// their insertion round, so no relation copying is needed.
	SemiNaive Strategy = iota
	// Naive re-evaluates every rule against the full database each round.
	Naive
)

func (s Strategy) String() string {
	switch s {
	case SemiNaive:
		return "semi-naive"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrBudgetExceeded is returned (wrapped) when evaluation exceeds
// MaxIterations or MaxFacts; used to bound deliberately divergent programs
// such as the Counting transformation of a left-linear recursion (§6.4).
// Callers distinguish budget stops from real failures with errors.Is.
var ErrBudgetExceeded = errors.New("evaluation budget exceeded")

// ErrBudget is the former name of ErrBudgetExceeded. No internal code
// references it anymore; it is kept one release for external callers and
// will then be removed.
//
// Deprecated: use ErrBudgetExceeded.
var ErrBudget = ErrBudgetExceeded

// ErrCanceled is returned (wrapped) when Options.Context is canceled before
// the fixpoint completes. The sequential evaluator notices cancellation at
// round boundaries and every few thousand inferences inside a round; the
// parallel evaluator additionally has its workers observe cancellation
// mid-round. Callers test with errors.Is.
var ErrCanceled = errors.New("evaluation canceled")

// ErrDeadlineExceeded is returned (wrapped) when Options.Context's deadline
// passes before the fixpoint completes; it is noticed at the same points as
// ErrCanceled. Callers test with errors.Is.
var ErrDeadlineExceeded = errors.New("evaluation deadline exceeded")

// ErrMemoryBudget is returned (wrapped) when the database's storage
// footprint (tuple arenas + hash indexes, the same accounting
// DB.StorageStats reports) exceeds Options.MaxBytes. It is checked at
// round boundaries, so one round of overshoot is possible; see
// docs/RESILIENCE.md for the sizing rationale. Callers test with errors.Is.
var ErrMemoryBudget = errors.New("evaluation memory budget exceeded")

// ErrBadOptions is returned by Eval when Options carry values outside their
// domain (negative Workers, MaxIterations, MaxFacts, or MaxBytes). Callers
// test with errors.Is.
var ErrBadOptions = errors.New("engine: invalid options")

// contextErr maps ctx's terminal state to the engine's typed errors; it
// returns nil while ctx is live (or nil).
func contextErr(ctx context.Context) error {
	faultinject.Hit(faultinject.ContextCheck)
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		cause := context.Cause(ctx)
		if errors.Is(cause, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v", ErrDeadlineExceeded, cause)
		}
		return fmt.Errorf("%w: %v", ErrCanceled, cause)
	default:
		return nil
	}
}

// StreamMode selects whether eligible non-recursive strata run on the
// streaming relational-algebra executor (internal/stream) instead of the
// materializing fixpoint. The engine's own evaluators never consult this
// field — the pipeline layer routes evaluation to the streaming executor
// when it is set — but it lives on Options so the choice threads through
// every caller (facade, server, CLI, bench) the same way Workers does.
//
// The zero value keeps the classic evaluator: the paper's cost measures
// (Inferences, Iterations) assume standard semi-naive evaluation, and the
// experiment reproductions must keep reporting them unchanged.
type StreamMode int

const (
	// StreamOff evaluates every stratum with the materializing fixpoint.
	StreamOff StreamMode = iota
	// StreamAuto streams non-recursive strata through composed iterator
	// pipelines and falls back to the fixpoint for recursive strata. Answer
	// sets and relation contents are identical to StreamOff; Inferences and
	// Iterations differ (each non-recursive rule body runs exactly once).
	StreamAuto
)

func (m StreamMode) String() string {
	switch m {
	case StreamOff:
		return "off"
	case StreamAuto:
		return "auto"
	default:
		return fmt.Sprintf("StreamMode(%d)", int(m))
	}
}

// Options configures evaluation.
type Options struct {
	Strategy Strategy
	// Context, when non-nil, bounds the evaluation's lifetime: cancellation
	// or a deadline terminates the fixpoint with ErrCanceled or
	// ErrDeadlineExceeded (both wrapped, test with errors.Is). The partial
	// derived state left in the DB is valid but incomplete; discard it.
	Context context.Context
	// Workers sets the number of evaluation goroutines. 0 and 1 select the
	// exact sequential evaluator; N > 1 evaluates the program stratum by
	// stratum (SCC schedule, see internal/depgraph) with each stratum's
	// rounds fanned out over N workers deriving into private buffers that
	// merge at the round barrier. Parallel evaluation applies to the
	// SemiNaive strategy without provenance; Naive and provenance-recording
	// runs always execute sequentially. Answer sets and Stats.Derived are
	// identical across worker counts; Stats.Iterations counts per-stratum
	// rounds in parallel mode and relation insertion order is not
	// deterministic across parallel runs.
	Workers int
	// MaxIterations bounds fixpoint rounds; 0 means unlimited.
	MaxIterations int
	// MaxFacts bounds the total number of derived facts; 0 means unlimited.
	MaxFacts int
	// MaxBytes bounds the database's storage footprint (tuple arenas plus
	// hash indexes, as DB.StorageStats accounts them) during evaluation; 0
	// means unlimited. The bound is enforced at round boundaries, so an
	// evaluation may overshoot by at most one round's derivations before
	// failing with ErrMemoryBudget.
	MaxBytes int64
	// Provenance records one derivation per fact (Definition 2.1 trees).
	Provenance bool
	// ReorderJoins lets the compiler greedily reorder body literals so the
	// most-bound literal runs first. Off by default: the paper's cost
	// discussions assume the written left-to-right order.
	ReorderJoins bool
	// Trace records per-rule counters in Stats.Rules and per-round records
	// in Stats.Rounds (plus, under parallel evaluation, per-stratum records
	// in Stats.Strata and per-worker records in Stats.Workers). Off by
	// default: with tracing off the hot path pays a nil check per event and
	// allocates nothing.
	Trace bool
	// Streaming selects the executor for non-recursive strata. The engine
	// evaluators ignore it (see StreamMode); internal/pipeline honors it
	// when the strategy evaluates bottom-up semi-naive without provenance.
	Streaming StreamMode
	// Span, when non-nil, receives a query-scoped span tree of the
	// evaluation: round and rule-pass spans sequentially, stratum, round,
	// and worker spans in parallel mode. Setting Span implies Trace (the
	// span attributes are read off the trace counters). Spans are recorded
	// per stage/stratum/round/rule — never per tuple — and the trace's span
	// cap bounds the memory one query can hold; a nil Span costs the same
	// single nil check as Trace=false.
	Span *trace.Span
}

// validate rejects option values outside their domain up front, so a typo
// like Workers: -4 fails loudly instead of silently evaluating sequentially.
func (o Options) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers = %d (want >= 0)", ErrBadOptions, o.Workers)
	}
	if o.MaxIterations < 0 {
		return fmt.Errorf("%w: MaxIterations = %d (want >= 0)", ErrBadOptions, o.MaxIterations)
	}
	if o.MaxFacts < 0 {
		return fmt.Errorf("%w: MaxFacts = %d (want >= 0)", ErrBadOptions, o.MaxFacts)
	}
	if o.MaxBytes < 0 {
		return fmt.Errorf("%w: MaxBytes = %d (want >= 0)", ErrBadOptions, o.MaxBytes)
	}
	if o.Streaming < StreamOff || o.Streaming > StreamAuto {
		return fmt.Errorf("%w: Streaming = %d (want StreamOff or StreamAuto)", ErrBadOptions, int(o.Streaming))
	}
	return nil
}

// memBudgetErr checks db's storage footprint against maxBytes (0 = no
// bound); both evaluators call it at round boundaries.
func memBudgetErr(db *DB, maxBytes int64) error {
	if maxBytes <= 0 {
		return nil
	}
	st := db.StorageStats()
	if used := st.ArenaBytes + st.IndexBytes; used > maxBytes {
		return fmt.Errorf("%w: %d bytes in arenas+indexes > MaxBytes %d", ErrMemoryBudget, used, maxBytes)
	}
	return nil
}

// Stats reports the work an evaluation performed.
type Stats struct {
	// Inferences counts successful rule-body instantiations, including
	// those that re-derive known facts. This is the paper's cost measure.
	Inferences int
	// Derived counts distinct facts added by rules (excludes EDB facts).
	Derived int
	// Iterations counts fixpoint rounds.
	Iterations int
	// Rules holds per-rule counters, indexed by rule position in the
	// program; nil unless Options.Trace.
	Rules []obsv.RuleStats
	// Rounds holds one record per fixpoint round; nil unless Options.Trace.
	Rounds []obsv.RoundStats
	// Strata holds one record per evaluated stratum; nil unless
	// Options.Trace under parallel evaluation (Workers > 1).
	Strata []obsv.StratumStats
	// Workers holds one record per evaluation worker; nil unless
	// Options.Trace under parallel evaluation (Workers > 1).
	Workers []obsv.WorkerStats
	// Degraded reports that a parallel evaluation hit a worker panic and
	// the result was produced by the sequential retry. Derived counts only
	// the retry's insertions (facts merged before the panic are already in
	// the DB), so it may undercount relative to a clean run.
	Degraded bool
}

// Result is the outcome of an evaluation. The DB passed to Eval is mutated
// in place and also referenced here.
type Result struct {
	DB    *DB
	Stats Stats
	Prov  *Provenance // nil unless Options.Provenance
}

// Eval computes the least fixpoint of program p over db (which supplies the
// EDB and receives all derived facts).
//
// Panic isolation: compilation and both evaluators run behind recover
// barriers, so a panic in engine code (or injected via
// internal/faultinject) fails this evaluation with a *PanicError wrapping
// ErrInternal instead of killing the process. A panic inside a parallel
// worker degrades gracefully: the evaluation is retried once sequentially
// over the same DB (every fact merged before the panic is a true fact, and
// the retry re-seeds the fixpoint from the full database) before failing.
// On any error the DB's contents are valid but incomplete; discard them.
func Eval(p *ast.Program, db *DB, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Span != nil {
		opts.Trace = true
	}
	rules, err := compileRulesGuarded(p, db.Store, opts.ReorderJoins)
	if err != nil {
		return nil, err
	}
	if opts.Workers > 1 && opts.Strategy == SemiNaive && !opts.Provenance {
		res, err := evalParallelGuarded(p, db, rules, opts)
		if err == nil || !workerPanicked(err) {
			return res, err
		}
		// Graceful degradation: round stamps left by the parallel rounds
		// are meaningless to a fresh fixpoint, so zero them (everything
		// already derived becomes base state) and re-run sequentially.
		db.resetRounds()
		res, err = evalSequentialGuarded(p, db, rules, opts)
		if res != nil {
			res.Stats.Degraded = true
		}
		return res, err
	}
	return evalSequentialGuarded(p, db, rules, opts)
}

// compileRulesGuarded runs rule compilation behind a recover barrier: a
// compiler panic becomes a typed *PanicError instead of unwinding into the
// caller's process.
func compileRulesGuarded(p *ast.Program, store *Store, reorder bool) (rules []*compiledRule, err error) {
	defer recoverTo("compile", &err)
	return compileProgram(p, store, reorder)
}

// evalSequentialGuarded runs the sequential evaluator behind a recover
// barrier.
func evalSequentialGuarded(p *ast.Program, db *DB, rules []*compiledRule, opts Options) (res *Result, err error) {
	defer recoverTo("eval", &err)
	ev := &evaluator{
		db:    db,
		rules: rules,
		opts:  opts,
		ctx:   opts.Context,
	}
	ev.rn.db = db
	ev.rn.sink = ev.emit
	if opts.Provenance {
		ev.prov = NewProvenance(p)
		ev.rn.prov = ev.prov
	}
	if opts.Trace {
		ev.trace = newEvalTrace(rules)
	}
	ev.span = opts.Span
	if err := ev.run(); err != nil {
		return nil, err
	}
	if ev.trace != nil {
		ev.stats.Rules = ev.trace.rules
		ev.stats.Rounds = ev.trace.rounds
	}
	return &Result{DB: db, Stats: ev.stats, Prov: ev.prov}, nil
}

// evalParallelGuarded runs the parallel coordinator behind a recover
// barrier. Worker goroutines carry their own barriers (a worker panic
// surfaces as a *PanicError with Where "worker", the degradation trigger);
// this one catches panics on the coordinator itself — merge inserts, index
// builds, scheduling.
func evalParallelGuarded(p *ast.Program, db *DB, rules []*compiledRule, opts Options) (res *Result, err error) {
	defer recoverTo("parallel", &err)
	return evalParallel(p, db, rules, opts)
}

const noLimit = int32(math.MaxInt32)

// roundRange restricts a body literal to tuples inserted in [lo, hi].
type roundRange struct{ lo, hi int32 }

var unrestricted = roundRange{0, noLimit}

type evaluator struct {
	db    *DB
	rules []*compiledRule
	opts  Options
	stats Stats
	prov  *Provenance
	ctx   context.Context // nil when the evaluation is unbounded

	curRound  int32
	newCounts map[string]int // facts stamped curRound+1, by predicate

	// rn executes rule joins; its sink is ev.emit.
	rn runner

	// trace is non-nil only under Options.Trace; all recording helpers are
	// nil-guarded so the untraced hot path neither branches deeply nor
	// allocates.
	trace *evalTrace

	// span is Options.Span (the evaluation's parent span) and roundSpan the
	// currently open round span; both nil when span tracing is off, and every
	// operation on them is a nil-receiver no-op.
	span      *trace.Span
	roundSpan *trace.Span
}

// runner executes one rule's join over the database. The sequential
// evaluator owns one, and each parallel worker owns one; sink receives the
// materialized head tuple of every successful body instantiation. The
// zero-valued parallel fields (frozen, shardMod) select the sequential
// behavior: lazily built indexes via Relation.Probe and no shard filter.
type runner struct {
	db *DB
	// limits holds the per-literal round windows of the rule being run.
	limits []roundRange
	// prov, when non-nil, makes join collect body fact IDs into children
	// (sequential mode only).
	prov *Provenance
	// children collects the body fact IDs of the current derivation when
	// provenance is on (sequential mode only).
	children []FactID
	// cur points at the per-rule trace counters, nil when untraced.
	cur *obsv.RuleStats
	// sink consumes derived head tuples; children is the provenance scratch
	// (valid only until sink returns).
	sink func(r *compiledRule, tuple []Val, children []FactID) error

	// Scratch buffers reused across rule evaluations, so the inner loop
	// allocates nothing: slots is the binding frame, key holds the probe
	// key being assembled for the current literal (dead once Probe
	// returns, so one buffer serves every recursion depth), and head
	// holds the materialized head tuple (consumed synchronously by sink —
	// both sinks copy it before returning).
	slots []Val
	key   []Val
	head  []Val

	// Parallel-mode fields.
	//
	// frozen probes prebuilt indexes read-only (no lazy builds, no shared
	// scratch), so concurrent runners never mutate shared relations.
	frozen bool
	// shardMod > 1 restricts the literal at shardLit to positions with
	// pos % shardMod == shardRem, splitting one rule evaluation into
	// disjoint work units.
	shardLit int
	shardMod int32
	shardRem int32
}

// evalTrace accumulates the per-rule and per-round records behind
// Options.Trace.
type evalTrace struct {
	rules  []obsv.RuleStats
	rounds []obsv.RoundStats
	start  time.Time // current round's start
	fired  int       // rule evaluation passes this round
}

func newEvalTrace(rules []*compiledRule) *evalTrace {
	t := &evalTrace{rules: make([]obsv.RuleStats, len(rules))}
	for i, r := range rules {
		t.rules[i] = obsv.RuleStats{Index: i, Rule: r.label()}
	}
	return t
}

func (ev *evaluator) traceRoundStart() {
	if t := ev.trace; t != nil {
		t.start = time.Now()
		t.fired = 0
	}
	ev.roundSpan = ev.span.Child("round").SetRound(int(ev.curRound))
}

func (ev *evaluator) traceRoundEnd() {
	if t := ev.trace; t != nil {
		t.rounds = append(t.rounds, obsv.RoundStats{
			Round:      int(ev.curRound),
			RulesFired: t.fired,
			NewFacts:   total(ev.newCounts),
			Wall:       time.Since(t.start),
		})
	}
	ev.roundSpan.AddTuplesOut(int64(total(ev.newCounts)))
	ev.roundSpan.End()
	ev.roundSpan = nil
}

func (ev *evaluator) traceRule(r *compiledRule) {
	if t := ev.trace; t != nil {
		ev.rn.cur = &t.rules[r.idx]
		ev.rn.cur.Firings++
		t.fired++
	}
}

func (ev *evaluator) run() error {
	// Materialize head and body relations up front so empty IDB predicates
	// exist and arities are checked.
	for _, r := range ev.rules {
		if _, err := ev.db.Rel(r.headPred, len(r.headArgs)); err != nil {
			return err
		}
		for _, l := range r.body {
			if _, err := ev.db.Rel(l.pred, l.arity); err != nil {
				return err
			}
		}
	}

	// Build every planned index up front (compile-time index planning):
	// no probe ever pays a lazy build scan, and inserts keep the indexes
	// current incrementally.
	buildIndexes(ev.db, ev.rules)

	if err := contextErr(ev.ctx); err != nil {
		return err
	}

	// Round 0: evaluate every rule against the full database (covers
	// bodyless rules, rules over EDB only, and pre-seeded IDB facts).
	ev.curRound = 0
	ev.newCounts = map[string]int{}
	ev.traceRoundStart()
	for _, r := range ev.rules {
		if err := ev.evalRule(r, -1); err != nil {
			return err
		}
	}
	ev.traceRoundEnd()
	ev.stats.Iterations++

	for total(ev.newCounts) > 0 {
		if err := contextErr(ev.ctx); err != nil {
			return err
		}
		if err := memBudgetErr(ev.db, ev.opts.MaxBytes); err != nil {
			return err
		}
		if ev.opts.MaxIterations > 0 && ev.stats.Iterations >= ev.opts.MaxIterations {
			return fmt.Errorf("%w: %d iterations", ErrBudgetExceeded, ev.stats.Iterations)
		}
		deltaCounts := ev.newCounts
		ev.newCounts = map[string]int{}
		ev.curRound++
		ev.traceRoundStart()
		switch ev.opts.Strategy {
		case Naive:
			for _, r := range ev.rules {
				if err := ev.evalRule(r, -1); err != nil {
					return err
				}
			}
		default: // SemiNaive
			for _, r := range ev.rules {
				for _, occ := range r.idbOccs {
					if deltaCounts[r.body[occ].pred] == 0 {
						continue
					}
					if err := ev.evalRule(r, occ); err != nil {
						return err
					}
				}
			}
		}
		ev.traceRoundEnd()
		ev.stats.Iterations++
	}
	// The loop checks the budget at round starts, which misses growth from
	// a converging final round and from index builds when the fixpoint
	// closes in round 0; one exit check covers both.
	return memBudgetErr(ev.db, ev.opts.MaxBytes)
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// buildIndexes materializes every index the compiled rules declare they
// probe; ensureIndex is idempotent, so repeated needs are free.
func buildIndexes(db *DB, rules []*compiledRule) {
	for _, r := range rules {
		for _, need := range r.indexNeeds {
			if rel := db.Lookup(need.pred); rel != nil {
				rel.ensureIndex(need.cols)
			}
		}
	}
}

// evalRule evaluates one rule. With deltaOcc >= 0 the literal at that body
// position ranges over the current round's delta and the other IDB
// occurrences over P_{r-1} (before it) / P_r (after it).
func (ev *evaluator) evalRule(r *compiledRule, deltaOcc int) error {
	ev.traceRule(r)
	ev.rn.setLimits(r, r.idbOccs, deltaOcc, ev.curRound)
	if ev.roundSpan == nil {
		return ev.rn.runRule(r)
	}
	// Rule-pass span: attribute the pass's probe and derivation deltas read
	// off the per-rule trace counters (Span implies Trace, so cur is set).
	sp := ev.roundSpan.Child("rule").SetRule(r.idx)
	var probes0, derived0 int
	if c := ev.rn.cur; c != nil {
		probes0, derived0 = c.JoinProbes, c.TuplesDerived
	}
	err := ev.rn.runRule(r)
	if c := ev.rn.cur; c != nil {
		sp.SetTuples(int64(c.JoinProbes-probes0), int64(c.TuplesDerived-derived0))
	}
	sp.End()
	return err
}

// setLimits prepares the per-literal round windows for one evaluation of r:
// unrestricted everywhere, then the semi-naive delta discipline over occs
// (the body positions participating in the fixpoint) when deltaOcc >= 0.
func (rn *runner) setLimits(r *compiledRule, occs []int, deltaOcc int, curRound int32) {
	if cap(rn.limits) < len(r.body) {
		rn.limits = make([]roundRange, len(r.body))
	}
	rn.limits = rn.limits[:len(r.body)]
	for i := range rn.limits {
		rn.limits[i] = unrestricted
	}
	if deltaOcc >= 0 {
		r0 := curRound
		for _, occ := range occs {
			switch {
			case occ < deltaOcc:
				rn.limits[occ] = roundRange{0, r0 - 1}
			case occ == deltaOcc:
				rn.limits[occ] = roundRange{r0, r0}
			default:
				rn.limits[occ] = roundRange{0, r0}
			}
		}
	}
}

// runRule runs r's body join under the limits set by setLimits.
func (rn *runner) runRule(r *compiledRule) error {
	if cap(rn.slots) < r.nslots {
		rn.slots = make([]Val, r.nslots)
	}
	slots := rn.slots[:r.nslots]
	for i := range slots {
		slots[i] = NoVal
	}
	rn.children = rn.children[:0]
	return rn.join(r, 0, slots, nil)
}

func (rn *runner) join(r *compiledRule, li int, slots []Val, trail []int) error {
	if li == len(r.body) {
		return rn.emitHead(r, slots)
	}
	spec := &r.body[li]
	rel := rn.db.Lookup(spec.pred)
	if rel == nil || rel.Len() == 0 {
		return nil
	}
	limit := rn.limits[li]
	shardHere := rn.shardMod > 1 && li == rn.shardLit

	childMark := len(rn.children)
	tryPos := func(pos int32) error {
		if t := rn.cur; t != nil {
			t.JoinProbes++
		}
		if rnd := rel.Round(pos); rnd < limit.lo || rnd > limit.hi {
			return nil
		}
		tuple := rel.Tuple(pos)
		mark := len(trail)
		ok := true
		for _, col := range spec.freeCols {
			if !matchPattern(spec.args[col], tuple[col], slots, &trail, rn.db.Store) {
				ok = false
				break
			}
		}
		if ok {
			if t := rn.cur; t != nil {
				t.TuplesMatched++
			}
			if rn.prov != nil {
				rn.children = append(rn.children[:childMark],
					rn.prov.factID(spec.pred, tuple))
			}
			if err := rn.join(r, li+1, slots, trail); err != nil {
				return err
			}
		}
		trail = undoTrail(slots, trail, mark)
		return nil
	}

	if len(spec.boundCols) > 0 {
		// The probe key lives in the runner's scratch: it is only read
		// until the probe below returns, so deeper recursion levels can
		// reuse the same buffer.
		key := rn.key[:0]
		for _, col := range spec.boundCols {
			key = append(key, evalPattern(spec.args[col], slots, rn.db.Store))
		}
		rn.key = key
		var positions []int32
		if rn.frozen {
			positions = rel.probeFrozen(spec.boundCols, key)
		} else {
			positions = rel.Probe(spec.boundCols, key)
		}
		if shardHere {
			lo, hi := shardRange(len(positions), rn.shardRem, rn.shardMod)
			positions = positions[lo:hi]
		}
		for _, pos := range positions {
			if err := tryPos(pos); err != nil {
				return err
			}
		}
		return nil
	}
	if shardHere {
		// Parallel rounds freeze relations, so the length is fixed and the
		// shard can slice it up front.
		lo, hi := shardRange(rel.Len(), rn.shardRem, rn.shardMod)
		for pos := lo; pos < hi; pos++ {
			if err := tryPos(pos); err != nil {
				return err
			}
		}
		return nil
	}
	// Re-read Len every iteration: sequential rounds insert while scanning,
	// and seeing those tuples in the same pass (the round-0 cascade) is part
	// of the sequential evaluator's convergence behavior.
	for pos := int32(0); pos < int32(rel.Len()); pos++ {
		if err := tryPos(pos); err != nil {
			return err
		}
	}
	return nil
}

// shardRange splits n candidate positions into shardMod contiguous ranges
// and returns shard shardRem's half-open [lo, hi). Contiguous slicing (not
// a modulo filter) keeps each shard's enumeration proportional to its own
// share, so the total scan work across shards equals one unsharded pass.
func shardRange(n int, shardRem, shardMod int32) (lo, hi int32) {
	lo = int32(int64(n) * int64(shardRem) / int64(shardMod))
	hi = int32(int64(n) * int64(shardRem+1) / int64(shardMod))
	return lo, hi
}

// emitHead materializes the head tuple into the runner's scratch and hands
// it to the sink; sinks must copy what they keep (InsertRound copies into
// the arena, the parallel sink copies into its buffer arena) because the
// scratch is overwritten by the next emission.
func (rn *runner) emitHead(r *compiledRule, slots []Val) error {
	tuple := rn.head[:0]
	for _, p := range r.headArgs {
		tuple = append(tuple, evalPattern(p, slots, rn.db.Store))
	}
	rn.head = tuple
	return rn.sink(r, tuple, rn.children)
}

// ctxCheckMask throttles in-round context checks: one contextErr call per
// 4096 inferences keeps the per-inference cost at a single branch while
// still bounding how long a canceled evaluation can keep running inside one
// round (the sequential round-0 cascade can make a single round arbitrarily
// long, so round-boundary checks alone are not enough).
const ctxCheckMask = 4096 - 1

// emit is the sequential sink: insert immediately, bump counters, record
// provenance, and enforce the fact and context budgets.
func (ev *evaluator) emit(r *compiledRule, tuple []Val, children []FactID) error {
	ev.stats.Inferences++
	if ev.ctx != nil && ev.stats.Inferences&ctxCheckMask == 0 {
		if err := contextErr(ev.ctx); err != nil {
			return err
		}
	}
	full := ev.db.Lookup(r.headPred)
	if !full.InsertRound(tuple, ev.curRound+1) {
		if t := ev.rn.cur; t != nil {
			t.Duplicates++
		}
		return nil
	}
	if t := ev.rn.cur; t != nil {
		t.TuplesDerived++
	}
	ev.newCounts[r.headPred]++
	ev.stats.Derived++
	if ev.prov != nil {
		ev.prov.record(r, tuple, children)
	}
	if ev.opts.MaxFacts > 0 && ev.stats.Derived > ev.opts.MaxFacts {
		return fmt.Errorf("%w: %d derived facts", ErrBudgetExceeded, ev.stats.Derived)
	}
	return nil
}

// Answers returns the tuples of query's predicate that match the query atom
// (constants and repeated variables filter; distinct variables project). The
// result preserves relation insertion order.
func Answers(db *DB, query ast.Atom) ([][]Val, error) {
	rel := db.Lookup(query.Pred)
	if rel == nil {
		return nil, nil
	}
	if rel.Arity() != len(query.Args) {
		return nil, fmt.Errorf("query %s has arity %d but relation has arity %d",
			query.Pred, len(query.Args), rel.Arity())
	}
	c := &compiler{store: db.Store, idb: map[string]bool{}, slots: map[string]int{}}
	pats := make([]pattern, len(query.Args))
	for i, t := range query.Args {
		pats[i] = c.compileTerm(t)
	}
	slots := make([]Val, c.n)
	var out [][]Val
	for pos := int32(0); pos < int32(rel.Len()); pos++ {
		if rel.Round(pos) < 0 {
			continue // dead row (deleted under incremental maintenance)
		}
		tuple := rel.Tuple(pos)
		for i := range slots {
			slots[i] = NoVal
		}
		var trail []int
		ok := true
		for i, p := range pats {
			if !matchPattern(p, tuple[i], slots, &trail, db.Store) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tuple)
		}
	}
	return out, nil
}

// AnswerSet renders the answers to query as a sorted set of strings, one
// per matching tuple; convenient for equivalence tests across strategies.
func AnswerSet(db *DB, query ast.Atom) (map[string]bool, error) {
	tuples, err := Answers(db, query)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		out[db.Store.TupleString(t)] = true
	}
	return out, nil
}

// LoadFacts interns and inserts ground atoms into db. Like Eval it runs
// behind a recover barrier: servers load a fresh EDB per request, so a
// panic during insertion (e.g. arena growth) must fail that one load as a
// typed ErrInternal, not the process.
func LoadFacts(db *DB, facts []ast.Atom) (err error) {
	defer recoverTo("load", &err)
	for _, f := range facts {
		tuple := make([]Val, len(f.Args))
		for i, t := range f.Args {
			v, err := db.Store.FromAST(t)
			if err != nil {
				return fmt.Errorf("fact %s: %w", f, err)
			}
			tuple[i] = v
		}
		if _, err := db.Insert(f.Pred, tuple...); err != nil {
			return err
		}
	}
	return nil
}
