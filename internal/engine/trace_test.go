package engine

import (
	"testing"

	"factorlog/internal/parser"
	"factorlog/internal/trace"
)

// traceTC evaluates a transitive closure over a small cyclic graph (cycles
// force re-derivations, so every counter is exercised) and returns the
// stats.
func traceTC(t *testing.T, opts Options) Stats {
	t.Helper()
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	db := NewDB()
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 1}} {
		db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
	}
	res, err := Eval(p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestTraceRecordsRuleAndRoundStats(t *testing.T) {
	stats := traceTC(t, Options{Trace: true})

	if len(stats.Rules) != 2 {
		t.Fatalf("Rules = %d, want one entry per program rule", len(stats.Rules))
	}
	var derived, dups, firings int
	for i, r := range stats.Rules {
		if r.Index != i {
			t.Errorf("rule %d has Index %d", i, r.Index)
		}
		if r.Rule == "" {
			t.Errorf("rule %d has empty source", i)
		}
		if r.JoinProbes < r.TuplesMatched {
			t.Errorf("rule %d: probes %d < matched %d", i, r.JoinProbes, r.TuplesMatched)
		}
		derived += r.TuplesDerived
		dups += r.Duplicates
		firings += r.Firings
	}
	if derived != stats.Derived {
		t.Errorf("per-rule derived %d != Stats.Derived %d", derived, stats.Derived)
	}
	if derived+dups != stats.Inferences {
		t.Errorf("derived %d + duplicates %d != Stats.Inferences %d", derived, dups, stats.Inferences)
	}
	if dups == 0 {
		t.Error("cyclic graph must re-derive facts, Duplicates = 0")
	}

	if len(stats.Rounds) != stats.Iterations {
		t.Fatalf("Rounds = %d, Iterations = %d", len(stats.Rounds), stats.Iterations)
	}
	var newFacts, fired int
	for i, r := range stats.Rounds {
		if r.Round != i {
			t.Errorf("round %d has Round %d", i, r.Round)
		}
		newFacts += r.NewFacts
		fired += r.RulesFired
	}
	if newFacts != stats.Derived {
		t.Errorf("per-round new facts %d != Stats.Derived %d", newFacts, stats.Derived)
	}
	if fired != firings {
		t.Errorf("per-round fired %d != per-rule firings %d", fired, firings)
	}
	if last := stats.Rounds[len(stats.Rounds)-1]; last.NewFacts != 0 {
		t.Errorf("final round derived %d new facts, want 0 (fixpoint)", last.NewFacts)
	}
}

func TestTraceNaiveStrategy(t *testing.T) {
	semi := traceTC(t, Options{Trace: true})
	naive := traceTC(t, Options{Trace: true, Strategy: Naive})
	// Naive re-runs every rule every round, so it fires at least as often
	// and probes at least as much as semi-naive.
	var nProbes, sProbes int
	for i := range naive.Rules {
		nProbes += naive.Rules[i].JoinProbes
		sProbes += semi.Rules[i].JoinProbes
	}
	if nProbes < sProbes {
		t.Errorf("naive probes %d < semi-naive probes %d", nProbes, sProbes)
	}
}

func TestTraceOffRecordsNothing(t *testing.T) {
	stats := traceTC(t, Options{})
	if stats.Rules != nil || stats.Rounds != nil {
		t.Errorf("Trace off: Rules = %v, Rounds = %v, want nil", stats.Rules, stats.Rounds)
	}
}

// TestTraceOffZeroAllocs pins the Options.Trace=false contract: the
// recording helpers on the evaluation hot path allocate no per-rule or
// per-round records when tracing is off.
func TestTraceOffZeroAllocs(t *testing.T) {
	ev := &evaluator{newCounts: map[string]int{}}
	r := &compiledRule{}
	allocs := testing.AllocsPerRun(1000, func() {
		ev.traceRoundStart()
		ev.traceRule(r)
		ev.traceRoundEnd()
	})
	if allocs != 0 {
		t.Errorf("trace helpers allocated %v times per run with tracing off", allocs)
	}
}

// spanTC is traceTC for span tracing: evaluate the cyclic TC under a
// trace.Context and return the finished trace.
func spanTC(t *testing.T, opts Options) *trace.Context {
	t.Helper()
	tc := trace.New(trace.NewID())
	opts.Span = tc.Root().Child("eval")
	stats := traceTC(t, opts)
	opts.Span.End()
	tc.Finish()
	if stats.Rules == nil {
		t.Fatal("Options.Span must imply Options.Trace")
	}
	return tc
}

// spanNames flattens a finished trace into name counts.
func spanNames(tc *trace.Context) map[string]int {
	counts := map[string]int{}
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		counts[s.Name]++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(tc.Root())
	return counts
}

func TestSpanTreeSequential(t *testing.T) {
	tc := spanTC(t, Options{})
	counts := spanNames(tc)
	if counts["round"] < 2 {
		t.Errorf("sequential trace has %d round spans, want >= 2", counts["round"])
	}
	if counts["rule"] < 2 {
		t.Errorf("sequential trace has %d rule spans, want >= 2", counts["rule"])
	}
	// Every rule span carries a rule index and sits under a round span.
	for _, ev := range tc.Root().Children() {
		for _, round := range ev.Children() {
			if round.Name != "round" || round.Round < 0 {
				t.Errorf("unexpected child of eval: %s round=%d", round.Name, round.Round)
			}
			for _, rule := range round.Children() {
				if rule.Name != "rule" || rule.Rule < 0 {
					t.Errorf("unexpected child of round: %s rule=%d", rule.Name, rule.Rule)
				}
			}
		}
	}
}

func TestSpanTreeParallel(t *testing.T) {
	tc := spanTC(t, Options{Workers: 3})
	counts := spanNames(tc)
	if counts["stratum"] < 1 {
		t.Errorf("parallel trace has %d stratum spans, want >= 1", counts["stratum"])
	}
	if counts["round"] < 2 {
		t.Errorf("parallel trace has %d round spans, want >= 2", counts["round"])
	}
	if counts["worker"] != 3 {
		t.Errorf("parallel trace has %d worker spans, want 3", counts["worker"])
	}
	// The derived-fact totals attributed to strata must cover every derived
	// fact (TC derives t-tuples in its single recursive stratum).
	var out int64
	for _, ev := range tc.Root().Children() {
		for _, s := range ev.Children() {
			if s.Name == "stratum" {
				out += s.TuplesOut
			}
		}
	}
	if out == 0 {
		t.Error("stratum spans attribute no derived tuples")
	}
}

// TestSpanOffZeroAllocs extends the Trace=false contract to Options.Span:
// with no span, the span hooks on the round path must not allocate.
func TestSpanOffZeroAllocs(t *testing.T) {
	ev := &evaluator{newCounts: map[string]int{}}
	allocs := testing.AllocsPerRun(1000, func() {
		ev.traceRoundStart()
		ev.traceRoundEnd()
	})
	if allocs != 0 {
		t.Errorf("span hooks allocated %v times per run with Span nil", allocs)
	}
}

// BenchmarkEvalNoTracing measures a full small evaluation with tracing
// disabled — the baseline the ~ns claim for disabled instrumentation is
// made against (compare BenchmarkEvalSpanTracing).
func BenchmarkEvalNoTracing(b *testing.B) {
	benchEval(b, false)
}

func BenchmarkEvalSpanTracing(b *testing.B) {
	benchEval(b, true)
}

func benchEval(b *testing.B, spans bool) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := NewDB()
		for j := 0; j < 30; j++ {
			db.MustInsert("e", db.Store.Int(j), db.Store.Int(j+1))
		}
		opts := Options{}
		var tc *trace.Context
		if spans {
			tc = trace.New("bench")
			opts.Span = tc.Root()
		}
		if _, err := Eval(p, db, opts); err != nil {
			b.Fatal(err)
		}
		tc.Finish()
	}
}
