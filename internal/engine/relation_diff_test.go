package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Differential tests pinning the arena-backed Relation to a trivially
// correct model: a map-based set plus linear-scan probes. Any divergence in
// Insert return values, Contains answers, round stamps, or index-probe
// result sets over randomized tuple streams (duplicate-heavy, with
// out-of-order round stamps) is a storage-layer bug.

// modelRelation is the reference implementation.
type modelRelation struct {
	arity  int
	seen   map[string]int32 // tuple key -> round of first insertion
	tuples [][]Val
	rounds []int32
}

func newModelRelation(arity int) *modelRelation {
	return &modelRelation{arity: arity, seen: map[string]int32{}}
}

func modelKey(tuple []Val) string { return fmt.Sprint(tuple) }

func (m *modelRelation) insertRound(tuple []Val, round int32) bool {
	k := modelKey(tuple)
	if _, ok := m.seen[k]; ok {
		return false
	}
	m.seen[k] = round
	cp := make([]Val, len(tuple))
	copy(cp, tuple)
	m.tuples = append(m.tuples, cp)
	m.rounds = append(m.rounds, round)
	return true
}

func (m *modelRelation) contains(tuple []Val) bool {
	_, ok := m.seen[modelKey(tuple)]
	return ok
}

// probe returns the model keys of all tuples matching key on cols.
func (m *modelRelation) probe(cols []int, key []Val) []string {
	var out []string
	for _, t := range m.tuples {
		match := true
		for i, c := range cols {
			if t[c] != key[i] {
				match = false
				break
			}
		}
		if match {
			out = append(out, modelKey(t))
		}
	}
	sort.Strings(out)
	return out
}

// randTuple draws from a small domain so duplicates and probe collisions
// are common.
func randTuple(rng *rand.Rand, arity, domain int) []Val {
	t := make([]Val, arity)
	for i := range t {
		t[i] = Val(rng.Intn(domain))
	}
	return t
}

func probeToKeys(r *Relation, positions []int32) []string {
	out := make([]string, 0, len(positions))
	for _, pos := range positions {
		out = append(out, modelKey(r.Tuple(pos)))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRelationDifferential(t *testing.T) {
	for _, cfg := range []struct {
		arity, domain, inserts int
	}{
		{1, 8, 200},
		{2, 6, 800},
		{3, 5, 1500},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("arity=%d", cfg.arity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + cfg.arity)))
			rel := NewRelation(cfg.arity)
			model := newModelRelation(cfg.arity)

			// Declare some indexes up front and some mid-stream, covering
			// lazily built and incrementally maintained paths.
			rel.ensureIndex([]int{0})
			var indexCols [][]int
			indexCols = append(indexCols, []int{0})
			if cfg.arity >= 2 {
				indexCols = append(indexCols, []int{1}, []int{0, 1})
			}

			for i := 0; i < cfg.inserts; i++ {
				// Rounds arrive out of order: semi-naive evaluation stamps
				// monotonically, but the storage layer must not rely on it.
				round := int32(rng.Intn(7))
				tuple := randTuple(rng, cfg.arity, cfg.domain)
				got := rel.InsertRound(tuple, round)
				want := model.insertRound(tuple, round)
				if got != want {
					t.Fatalf("insert %v round %d: got %v, model %v", tuple, round, got, want)
				}
				// Mutating the caller's slice must not affect the relation.
				for j := range tuple {
					tuple[j] = -99
				}

				if i == cfg.inserts/2 && cfg.arity >= 2 {
					rel.ensureIndex([]int{cfg.arity - 1})
					indexCols = append(indexCols, []int{cfg.arity - 1})
				}

				// Periodically cross-check membership, rounds, and probes.
				if i%16 != 0 {
					continue
				}
				probe := randTuple(rng, cfg.arity, cfg.domain)
				if got, want := rel.Contains(probe), model.contains(probe); got != want {
					t.Fatalf("contains %v: got %v, model %v", probe, got, want)
				}
				for _, cols := range indexCols {
					key := make([]Val, len(cols))
					for k, c := range cols {
						key[k] = probe[c]
					}
					got := probeToKeys(rel, rel.Probe(cols, key))
					want := model.probe(cols, key)
					if !equalStrings(got, want) {
						t.Fatalf("probe cols=%v key=%v:\n got  %v\n want %v", cols, key, got, want)
					}
				}
			}

			// Full sweep: every model tuple present with the right stamp,
			// relation enumeration matches the model set exactly.
			if rel.Len() != len(model.tuples) {
				t.Fatalf("Len = %d, model has %d", rel.Len(), len(model.tuples))
			}
			for pos := int32(0); pos < int32(rel.Len()); pos++ {
				tup := rel.Tuple(pos)
				k := modelKey(tup)
				round, ok := model.seen[k]
				if !ok {
					t.Fatalf("relation holds %v, model does not", tup)
				}
				if rel.Round(pos) != round {
					t.Fatalf("round of %v: got %d, model %d", tup, rel.Round(pos), round)
				}
				if !rel.Contains(tup) {
					t.Fatalf("relation does not Contain its own tuple %v", tup)
				}
			}
		})
	}
}

// TestRelationFrozenProbeRace hammers a frozen relation's read paths
// (Contains and probeFrozen) from 8 goroutines while checking results, the
// regime parallel rounds run in. Under -race this pins the claim that the
// arena design removed all shared probe scratch.
func TestRelationFrozenProbeRace(t *testing.T) {
	const n = 4096
	rel := NewRelation(2)
	for i := 0; i < n; i++ {
		rel.Insert([]Val{Val(i / 8), Val(i)})
	}
	rel.ensureIndex([]int{0})
	rel.ensureIndex([]int{1})

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			probe := make([]Val, 2)
			key := make([]Val, 1)
			for i := 0; i < 20000; i++ {
				x := (i*31 + g*977) % n
				probe[0], probe[1] = Val(x/8), Val(x)
				if !rel.Contains(probe) {
					done <- fmt.Errorf("goroutine %d: missing %v", g, probe)
					return
				}
				probe[1] = Val(n + x)
				if rel.Contains(probe) {
					done <- fmt.Errorf("goroutine %d: phantom %v", g, probe)
					return
				}
				key[0] = Val(x / 8)
				if got := len(rel.probeFrozen([]int{0}, key)); got != 8 {
					done <- fmt.Errorf("goroutine %d: probe col0 %v returned %d rows, want 8", g, key, got)
					return
				}
				key[0] = Val(x)
				if got := len(rel.probeFrozen([]int{1}, key)); got != 1 {
					done <- fmt.Errorf("goroutine %d: probe col1 %v returned %d rows, want 1", g, key, got)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
