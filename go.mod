module factorlog

go 1.22
