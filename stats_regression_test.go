package factorlog_test

import (
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
)

// TestExample44StatsRegression locks the factoring win of the paper's
// Example 4.4 (the symmetric program) in as exact numbers, not just answer
// equality: the same EDB, evaluated under naive, magic, factored, and
// factored+opt, must keep producing the same Iterations and Inferences. Any
// engine or transformation change that silently alters the cost profile
// fails here.
//
// The EDB is a 19-edge chain with identity combination facts c(y,y,y), so
// the symmetric recursion walks the whole chain (19 answers from node 1)
// instead of converging after one round.
func TestExample44StatsRegression(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
	`)
	tgds := parser.MustParseProgram(`
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
	`)
	pl := pipeline.New(p, parser.MustParseAtom("p(1, Y)")).WithConstraints(tgds.Rules)
	load := func() *engine.DB {
		db := engine.NewDB()
		for i := 1; i < 20; i++ {
			x, y := db.Store.Int(i), db.Store.Int(i+1)
			db.MustInsert("e", x, y)
			db.MustInsert("r1", y)
			db.MustInsert("r2", y)
			db.MustInsert("c", y, y, y)
		}
		db.MustInsert("l1", db.Store.Int(1))
		return db
	}

	want := []struct {
		strategy   pipeline.Strategy
		iterations int
		inferences int
		arity      int
	}{
		// Naive re-derives aggressively: the cost baseline.
		{pipeline.Naive, 20, 569, 2},
		// Magic prunes to the relevant facts.
		{pipeline.Magic, 57, 99, 2},
		// Raw factoring (before the Section 5 clean-up) halves the arity but
		// its redundant bt x ft joins re-inflate the inference count — the
		// reason the paper always reports post-clean-up programs.
		{pipeline.Factored, 39, 785, 1},
		// The Section 5 clean-up keeps the unary arity and wins outright.
		{pipeline.FactoredOptimized, 39, 80, 1},
	}

	results := map[pipeline.Strategy]*pipeline.RunResult{}
	for _, w := range want {
		r, err := pl.Run(w.strategy, load(), engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.strategy, err)
		}
		results[w.strategy] = r
		if len(r.Answers) != 19 {
			t.Errorf("%s: %d answers, want 19", w.strategy, len(r.Answers))
		}
		if r.Iterations != w.iterations {
			t.Errorf("%s: Iterations = %d, want %d", w.strategy, r.Iterations, w.iterations)
		}
		if r.Inferences != w.inferences {
			t.Errorf("%s: Inferences = %d, want %d", w.strategy, r.Inferences, w.inferences)
		}
		if r.MaxIDBArity != w.arity {
			t.Errorf("%s: MaxIDBArity = %d, want %d", w.strategy, r.MaxIDBArity, w.arity)
		}
	}

	// The headline inequality, independent of the exact constants.
	opt := results[pipeline.FactoredOptimized]
	if !(opt.Inferences < results[pipeline.Magic].Inferences &&
		results[pipeline.Magic].Inferences < results[pipeline.Naive].Inferences) {
		t.Errorf("inference ordering broken: opt=%d magic=%d naive=%d",
			opt.Inferences, results[pipeline.Magic].Inferences, results[pipeline.Naive].Inferences)
	}
}
