// Genealogy: same-generation cousins — the canonical recursion that does
// NOT factor (the paper's closing remark of Section 6.4). The example shows
// the honest failure path of the library: the class tests reject the
// program with a reason, the randomized refuter produces a concrete
// counterexample EDB, and Magic Sets alone still prunes the computation.
//
// Run with: go run ./examples/genealogy
package main

import (
	"fmt"
	"log"

	"factorlog"
)

func main() {
	sys, err := factorlog.Load(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		?- sg(alice, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The class tests reject sg, with the reasons per theorem.
	if _, err := sys.Classify(); err != nil {
		fmt.Println("factoring rejected:")
		fmt.Println(" ", err)
	}

	// A small dynasty: three generations under two founders.
	load := func() *factorlog.DB {
		db := sys.NewDB()
		parent := map[string]string{
			"bob": "adam", "carol": "adam",
			"dave": "eve", "erin": "eve",
			"alice": "bob", "frank": "carol", "grace": "dave", "heidi": "erin",
			"ivan": "alice", "judy": "frank", "ken": "grace", "leo": "heidi",
		}
		for child, p := range parent {
			db.Fact("up", child, p)
			db.Fact("down", p, child)
		}
		db.Fact("flat", "adam", "eve")
		db.Fact("flat", "eve", "adam")
		return db
	}

	results, skipped, err := sys.Compare(
		[]factorlog.Strategy{factorlog.SemiNaive, factorlog.Magic, factorlog.FactoredOptimized},
		load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %10s %12s %10s\n", "strategy", "answers", "inferences", "facts")
	for _, r := range results {
		fmt.Printf("%-14s %10d %12d %10d\n", r.Strategy, len(r.Answers), r.Inferences, r.Facts)
	}
	for s, why := range skipped {
		fmt.Printf("%-14s unavailable: %v\n", s, why)
	}

	res, err := sys.Run(factorlog.Magic, load())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice's generation: %v\n", res.Answers)
}
