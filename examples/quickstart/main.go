// Quickstart: the paper's running example (Examples 1.1 / 4.2 / 5.3).
//
// The three-rule transitive closure is loaded with a single-source query;
// the program is classified (selection-pushing), transformed (Magic Sets,
// factoring, Section-5 clean-up) and evaluated, and every strategy's cost
// is compared on a random graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"factorlog"
)

func main() {
	sys, err := factorlog.Load(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(5, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	class, err := sys.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("factorable:", class)

	// The final program of Example 5.3: a unary recursion.
	ex, err := sys.Explain(factorlog.FactoredOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized program:")
	fmt.Print(ex.Program)

	// A random graph: 300 nodes, 600 edges.
	load := func() *factorlog.DB {
		db := sys.NewDB()
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 600; i++ {
			db.Fact("e", fmt.Sprint(r.Intn(300)), fmt.Sprint(r.Intn(300)))
		}
		return db
	}

	fmt.Println("\nstrategy comparison (300 nodes, 600 random edges):")
	results, skipped, err := sys.Compare(factorlog.AllStrategies(), load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10s %12s %10s %8s\n", "strategy", "answers", "inferences", "facts", "arity")
	for _, r := range results {
		fmt.Printf("%-14s %10d %12d %10d %8d\n",
			r.Strategy, len(r.Answers), r.Inferences, r.Facts, r.MaxIDBArity)
	}
	for s, why := range skipped {
		fmt.Printf("%-14s unavailable: %v\n", s, why)
	}
}
