// Flights: a route-reachability workload in the shape the paper's
// introduction motivates — "which cities can I reach from SFO?" over a
// large flight network, where materializing the full closure is wasteful.
//
// The recursion uses all three rule forms (like Example 1.1), so plain
// Magic Sets keeps a binary reachable/2 relation; factoring collapses it to
// two unary predicates and the evaluation touches only the part of the
// network reachable from the queried airport.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"
	"math/rand"

	"factorlog"
)

func main() {
	sys, err := factorlog.Load(`
		reach(X, Y) :- reach(X, W), reach(W, Y).
		reach(X, Y) :- flight(X, W), reach(W, Y).
		reach(X, Y) :- reach(X, W), flight(W, Y).
		reach(X, Y) :- flight(X, Y).
		?- reach(sfo, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	load := func() *factorlog.DB {
		db := sys.NewDB()
		hubs := []string{"sfo", "jfk", "ord", "lhr", "nrt", "syd", "fra", "dxb"}
		// Hub ring.
		for i, h := range hubs {
			db.Fact("flight", h, hubs[(i+1)%len(hubs)])
		}
		// Spokes: 40 regional airports per hub; a few fly back, most are
		// terminal destinations (reachable but pruning-relevant: the
		// closure out of a regional airport is tiny).
		r := rand.New(rand.NewSource(7))
		for _, h := range hubs {
			for i := 0; i < 40; i++ {
				city := fmt.Sprintf("%s_reg%d", h, i)
				db.Fact("flight", h, city)
				if r.Intn(5) == 0 {
					db.Fact("flight", city, hubs[r.Intn(len(hubs))])
				}
			}
		}
		return db
	}

	class, err := sys.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recursion class:", class)

	results, skipped, err := sys.Compare(
		[]factorlog.Strategy{factorlog.SemiNaive, factorlog.Magic, factorlog.FactoredOptimized},
		load)
	if err != nil {
		log.Fatal(err)
	}
	_ = skipped
	fmt.Printf("\n%-14s %10s %12s %10s %8s\n", "strategy", "reachable", "inferences", "facts", "arity")
	for _, r := range results {
		fmt.Printf("%-14s %10d %12d %10d %8d\n",
			r.Strategy, len(r.Answers), r.Inferences, r.Facts, r.MaxIDBArity)
	}

	res, err := sys.Run(factorlog.FactoredOptimized, load())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample destinations from sfo: %v ...\n", res.Answers[:min(6, len(res.Answers))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
