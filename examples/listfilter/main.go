// Listfilter: Example 1.2 / 4.6 of the paper — find the members of a list
// that satisfy a predicate. Prolog computes O(n^2) facts; the factored
// Magic program, with the engine's structure-shared lists, is linear.
//
// Run with: go run ./examples/listfilter
package main

import (
	"fmt"
	"log"
	"strings"

	"factorlog"
)

func main() {
	n := 512
	// Build the query list [w1, ..., wn]; p marks every third element.
	elems := make([]string, n)
	for i := range elems {
		elems[i] = fmt.Sprintf("w%d", i+1)
	}
	src := fmt.Sprintf(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
		?- pmem(X, [%s]).
	`, strings.Join(elems, ", "))

	sys, err := factorlog.Load(src)
	if err != nil {
		log.Fatal(err)
	}

	load := func() *factorlog.DB {
		db := sys.NewDB()
		for i := 2; i < n; i += 3 {
			db.Fact("p", elems[i])
		}
		return db
	}

	// The optimized program is the paper's linear-time list walker.
	ex, err := sys.Explain(factorlog.FactoredOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized program (list elided in the seed):")
	for _, line := range strings.SplitAfter(ex.Program, "\n") {
		if len(line) > 100 {
			line = line[:97] + "...\n"
		}
		fmt.Print(line)
	}

	fmt.Printf("\nlist length %d, p marks every 3rd element\n\n", n)
	for _, s := range []factorlog.Strategy{factorlog.TopDown, factorlog.FactoredOptimized} {
		res, err := sys.Run(s, load())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s answers=%d facts=%d inferences=%d\n",
			res.Strategy, len(res.Answers), res.Facts, res.Inferences)
	}
	fmt.Println("\nthe top-down 'facts' count is quadratic in n; the factored one linear")
}
