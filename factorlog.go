// Package factorlog is a deductive-database engine and optimizer that
// reproduces "Argument Reduction by Factoring" (Naughton, Ramakrishnan,
// Sagiv, Ullman; VLDB 1989 / TCS 146, 1995).
//
// The package exposes a small facade over the internal machinery:
//
//	sys, err := factorlog.Load(`
//	    t(X, Y) :- t(X, W), t(W, Y).
//	    t(X, Y) :- e(X, W), t(W, Y).
//	    t(X, Y) :- t(X, W), e(W, Y).
//	    t(X, Y) :- e(X, Y).
//	    ?- t(5, Y).
//	`)
//	db := sys.NewDB()
//	db.Fact("e", "5", "6")
//	db.Fact("e", "6", "7")
//	res, err := sys.Run(factorlog.FactoredOptimized, db)
//	// res.Answers == {"(6)", "(7)"}
//
// Strategies range from naive bottom-up evaluation through Magic Sets
// (plain and supplementary) to the paper's factored and Section-5-optimized
// programs, plus the Counting transformation, a memo-less Prolog-style
// top-down baseline, and a tabled (QSQR) top-down evaluator. Transformed
// programs can be inspected via Explain, factorability certificates via
// Classify.
package factorlog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/cost"
	"factorlog/internal/cq"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/trace"
)

// Strategy selects how a query is evaluated. See package pipeline for the
// exact composition of each.
type Strategy = pipeline.Strategy

// The available strategies.
const (
	Naive              = pipeline.Naive
	SemiNaive          = pipeline.SemiNaive
	Magic              = pipeline.Magic
	SupplementaryMagic = pipeline.SupplementaryMagic
	Factored           = pipeline.Factored
	FactoredOptimized  = pipeline.FactoredOptimized
	Counting           = pipeline.Counting
	TopDown            = pipeline.TopDown
	Tabled             = pipeline.Tabled
	// Auto defers the choice to the adaptive optimizer: Run snapshots the
	// EDB's statistics, prices the eligible fixed strategies with the cost
	// model, and evaluates the winner (Result.Strategy reports which;
	// Result.Candidates the full table). See docs/PLANNER.md.
	Auto = pipeline.Auto
)

// AllStrategies lists every fixed strategy in presentation order. Auto is
// deliberately absent: it resolves to one of these, so sweeping it alongside
// them would double-count its winner.
func AllStrategies() []Strategy { return pipeline.AllStrategies() }

// ErrNoQuery is returned by Load when the source contains no ?- query.
var ErrNoQuery = errors.New("factorlog: source contains no query (?- ...)")

// ErrNotFactorable is returned by Run/Explain for the factored strategies
// when no theorem of the paper certifies the factoring.
var ErrNotFactorable = core.ErrNotFactorable

// ErrAutoUnsupported is returned by Run(Auto, ...) on surfaces that need a
// caller-fixed strategy (e.g. provenance evaluation); test with errors.Is.
var ErrAutoUnsupported = pipeline.ErrAutoUnsupported

// CandidateInfo re-exports one row of the Auto planner's candidate table;
// see pipeline.CandidateInfo for field documentation.
type CandidateInfo = pipeline.CandidateInfo

// ErrBudgetExceeded is returned (wrapped) by Run when an evaluation exceeds
// the WithBudget limits; test with errors.Is to distinguish budget stops
// from real failures. (The engine's deprecated ErrBudget alias for this
// error is not re-exported here and is scheduled for removal.)
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// ErrCanceled is returned (wrapped) by Run when the context installed with
// WithContext (or passed to Prepared.Run) is canceled before evaluation
// completes; test with errors.Is.
var ErrCanceled = engine.ErrCanceled

// ErrDeadlineExceeded is returned (wrapped) by Run when that context's
// deadline passes before evaluation completes; test with errors.Is.
var ErrDeadlineExceeded = engine.ErrDeadlineExceeded

// ErrBadOptions is returned (wrapped) by Run when the evaluation options
// are invalid (e.g. a negative WithWorkers count); test with errors.Is.
var ErrBadOptions = engine.ErrBadOptions

// ErrMemoryBudget is returned (wrapped) by Run when an evaluation's storage
// footprint (tuple arenas + hash indexes) exceeds the WithMemoryBudget
// bound; test with errors.Is. It is distinct from ErrBudgetExceeded, which
// governs derivation counts, not bytes.
var ErrMemoryBudget = engine.ErrMemoryBudget

// ErrInternal is returned (wrapped) by Run when evaluation or plan
// compilation panicked and the engine's recovery barrier converted the
// panic to an error; the process survives, the run's DB should be
// discarded. Test with errors.Is; the stack is reachable via
// errors.As(*engine.PanicError).
var ErrInternal = engine.ErrInternal

// RuleStats, RoundStats, StratumStats, WorkerStats, Span and StorageStats
// re-export the observability record types; see package obsv for field
// documentation.
type (
	RuleStats    = obsv.RuleStats
	RoundStats   = obsv.RoundStats
	StratumStats = obsv.StratumStats
	WorkerStats  = obsv.WorkerStats
	Span         = obsv.Span
	StorageStats = obsv.StorageStats
	StreamStats  = obsv.StreamStats
)

// Trace and TraceSpan re-export the query-scoped tracing types: a Trace is
// one query's bounded span tree, a TraceSpan one node of it. A nil
// *TraceSpan is a valid no-op tracer, so callers can thread one
// unconditionally. See package trace for the span discipline.
type (
	Trace     = trace.Context
	TraceSpan = trace.Span
)

// NewTrace starts a trace for one query; pass its Root() to WithTraceSpan,
// run, then Finish() and render via Profile() or JSON-marshal it.
func NewTrace(id string) *Trace { return trace.New(id) }

// NewTraceID mints a process-unique query ID (e.g. "q-9f2c1a7b-42").
func NewTraceID() string { return trace.NewID() }

// System is a compiled (program, query) pair with cached transformations.
type System struct {
	pl       *pipeline.Pipeline
	baseEDB  []ast.Atom
	evalOpts engine.Options
}

// Load parses a source text containing IDB rules, exactly one ?- query,
// and optionally ground EDB facts (which seed every DB created by NewDB).
func Load(src string) (*System, error) {
	u, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.Queries) == 0 {
		return nil, ErrNoQuery
	}
	if len(u.Queries) > 1 {
		return nil, fmt.Errorf("factorlog: %d queries in source, want exactly 1", len(u.Queries))
	}
	return &System{
		pl:      pipeline.New(u.Program(), u.Queries[0]),
		baseEDB: u.Facts,
	}, nil
}

// LoadProgram builds a System from an already-parsed program and query.
func LoadProgram(p *ast.Program, query ast.Atom) *System {
	return &System{pl: pipeline.New(p, query)}
}

// WithConstraints declares full-TGD constraints the EDB is known to
// satisfy, widening the factorable classes (e.g. the EDB regularities the
// paper's Examples 4.3-4.5 presume). The source is parsed as rules.
func (s *System) WithConstraints(src string) (*System, error) {
	p, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	for _, r := range p.Rules {
		if err := cq.ValidateTGD(r); err != nil {
			return nil, err
		}
	}
	s.pl.WithConstraints(p.Rules)
	return s, nil
}

// WithBudget bounds evaluations (0 means unlimited); useful for strategies
// that can diverge (Counting on cyclic data). Overruns surface as
// ErrBudgetExceeded.
func (s *System) WithBudget(maxIterations, maxFacts int) *System {
	s.evalOpts.MaxIterations = maxIterations
	s.evalOpts.MaxFacts = maxFacts
	return s
}

// WithMemoryBudget bounds each evaluation's storage footprint — tuple
// arenas plus hash indexes, in bytes — checked at round boundaries
// (0 means unlimited). Overruns surface as ErrMemoryBudget.
func (s *System) WithMemoryBudget(maxBytes int64) *System {
	s.evalOpts.MaxBytes = maxBytes
	return s
}

// WithTrace enables (or disables) evaluation tracing: subsequent Runs fill
// Result.Rules and Result.Rounds (plus Result.Strata and Result.Workers for
// parallel runs), at a small evaluation-time cost.
func (s *System) WithTrace(on bool) *System {
	s.evalOpts.Trace = on
	return s
}

// WithTraceSpan threads a trace span into subsequent Runs: the pipeline
// attaches its compile-stage spans under it and the engine records stratum,
// round, rule, and worker spans below an "eval" child. A nil span disables
// span tracing (the no-op path costs nothing). Implies WithTrace for the
// duration of the traced runs.
func (s *System) WithTraceSpan(sp *TraceSpan) *System {
	s.evalOpts.Span = sp
	return s
}

// WithWorkers sets the evaluation worker count for the bottom-up semi-naive
// strategies: 0 or 1 keeps the sequential evaluator, n > 1 evaluates with
// parallel stratified fixpoints over n workers. Answer sets and derived-fact
// counts are identical across worker counts.
func (s *System) WithWorkers(n int) *System {
	s.evalOpts.Workers = n
	return s
}

// WithStreaming opts subsequent Runs into the streaming executor: the
// bottom-up semi-naive strategies run each non-recursive stratum (magic
// seeds, factoring cleanup products, ...) as a single-pass iterator
// pipeline instead of a materializing fixpoint, falling back to the
// fixpoint for recursive strata. Answers are identical either way;
// Result.Executor and Result.Stream report what ran. Off by default so the
// paper's cost measures keep their fixpoint semantics.
func (s *System) WithStreaming(on bool) *System {
	if on {
		s.evalOpts.Streaming = engine.StreamAuto
	} else {
		s.evalOpts.Streaming = engine.StreamOff
	}
	return s
}

// WithContext bounds subsequent Runs by ctx: cancellation or a deadline
// terminates evaluation with ErrCanceled or ErrDeadlineExceeded. A nil ctx
// removes the bound. Per-run contexts are usually clearer via Prepared.Run.
func (s *System) WithContext(ctx context.Context) *System {
	s.evalOpts.Context = ctx
	return s
}

// Query returns the query atom.
func (s *System) Query() ast.Atom { return s.pl.Query }

// Program returns the IDB program.
func (s *System) Program() *ast.Program { return s.pl.Program }

// DB is an extensional database bound to a System.
type DB struct {
	inner *engine.DB
}

// NewDB returns a database pre-loaded with any facts from the Load source.
func (s *System) NewDB() *DB {
	db := engine.NewDB()
	if err := engine.LoadFacts(db, s.baseEDB); err != nil {
		// baseEDB atoms are ground by construction (parser checked).
		panic(err)
	}
	return &DB{inner: db}
}

// Fact inserts a fact with constant arguments. Arguments are constant
// symbols; use FactTerms for structured (list) arguments.
func (db *DB) Fact(pred string, args ...string) {
	tuple := make([]engine.Val, len(args))
	for i, a := range args {
		tuple[i] = db.inner.Store.Const(a)
	}
	db.inner.MustInsert(pred, tuple...)
}

// FactTerms inserts a fact whose arguments are parsed as ground terms,
// e.g. db.FactTerms("m", "[a,b,c]").
func (db *DB) FactTerms(pred string, args ...string) error {
	tuple := make([]engine.Val, len(args))
	for i, a := range args {
		t, err := parser.ParseTerm(a)
		if err != nil {
			return err
		}
		v, err := db.inner.Store.FromAST(t)
		if err != nil {
			return err
		}
		tuple[i] = v
	}
	_, err := db.inner.Insert(pred, tuple...)
	return err
}

// Count returns the number of facts for pred.
func (db *DB) Count(pred string) int { return db.inner.Count(pred) }

// Engine exposes the underlying engine database for advanced use.
func (db *DB) Engine() *engine.DB { return db.inner }

// Result is the outcome of a Run.
type Result struct {
	// Strategy that produced this result.
	Strategy Strategy
	// Answers are the query's answers projected to its free argument
	// positions, rendered "(v1,...,vk)".
	Answers []string
	// Facts, Inferences, Iterations and MaxIDBArity are the uniform cost
	// measures; see pipeline.RunResult.
	Facts       int
	Inferences  int
	Iterations  int
	MaxIDBArity int
	// Spans traces the transformation stages that produced the evaluated
	// program, ending with an "eval" span.
	Spans []Span
	// Rules and Rounds carry per-rule and per-round evaluation records when
	// tracing is on (WithTrace); nil otherwise.
	Rules  []RuleStats
	Rounds []RoundStats
	// Strata and Workers carry per-stratum and per-worker records for traced
	// parallel runs (WithWorkers > 1); nil otherwise.
	Strata  []StratumStats
	Workers []WorkerStats
	// EvalWall is the evaluation's wall-clock time.
	EvalWall time.Duration
	// Storage is the database's storage shape after evaluation: tuple-arena
	// and hash-index bytes plus table load factors.
	Storage StorageStats
	// Degraded reports that a parallel run (WithWorkers > 1) lost a worker
	// to a panic and the answers come from the automatic sequential retry.
	Degraded bool
	// Executor names the bottom-up evaluator that ran: "stream" under
	// WithStreaming for a program with streamable strata, "materialize" for
	// the classic fixpoint, empty for top-down strategies. Stream carries
	// the streaming counters when Executor is "stream"; nil otherwise.
	Executor string
	Stream   *StreamStats
	// AutoPicked reports that the run was requested as Auto and Strategy is
	// the optimizer's pick; Candidates is the table it chose from.
	AutoPicked bool
	Candidates []CandidateInfo

	raw *pipeline.RunResult
}

// Profile renders the result's stage spans and, when tracing was enabled,
// its per-rule and per-round tables.
func (r *Result) Profile() string {
	if r.raw == nil {
		return ""
	}
	return pipeline.ProfileTable(r.raw)
}

// Run evaluates the query over db with the given strategy. The db is
// consumed (derived relations are added); create a fresh one per run.
func (s *System) Run(strategy Strategy, db *DB) (*Result, error) {
	r, err := s.pl.Run(strategy, db.inner, s.evalOpts)
	if err != nil {
		return nil, err
	}
	return newResult(r), nil
}

// newResult converts a pipeline run into the facade shape.
func newResult(r *pipeline.RunResult) *Result {
	answers := make([]string, 0, len(r.Answers))
	for a := range r.Answers {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	return &Result{
		Strategy:    r.Strategy,
		Answers:     answers,
		Facts:       r.Facts,
		Inferences:  r.Inferences,
		Iterations:  r.Iterations,
		MaxIDBArity: r.MaxIDBArity,
		Spans:       r.Spans,
		Rules:       r.Rules,
		Rounds:      r.Rounds,
		Strata:      r.Strata,
		Workers:     r.Workers,
		EvalWall:    r.EvalWall,
		Storage:     r.Storage,
		Degraded:    r.Degraded,
		Executor:    r.Executor,
		Stream:      r.Stream,
		AutoPicked:  r.AutoPicked,
		Candidates:  r.Candidates,
		raw:         r,
	}
}

// Prepared is a query compiled ahead of time for one strategy: the
// transformation chain (adorn, magic, factor, optimize, ...) ran at Prepare
// time, so each Run pays only evaluation cost. A Prepared is safe for
// concurrent Runs, each over its own DB — the shape a long-lived server
// wants (see cmd/factorlogd, which adds a plan cache over the same idea).
type Prepared struct {
	sys      *System
	strategy Strategy
}

// Prepare compiles the system's query for one strategy. It fails where
// Run would fail to transform (e.g. Factored on a non-factorable program),
// so errors surface at startup instead of per request.
func (s *System) Prepare(strategy Strategy) (*Prepared, error) {
	if err := s.pl.Compile(strategy); err != nil {
		return nil, err
	}
	return &Prepared{sys: s, strategy: strategy}, nil
}

// Strategy returns the strategy the query was prepared for.
func (p *Prepared) Strategy() Strategy { return p.strategy }

// Run evaluates the prepared query over db under ctx; cancellation and
// deadlines surface as ErrCanceled / ErrDeadlineExceeded. The db is
// consumed (derived relations are added); create a fresh one per run.
func (p *Prepared) Run(ctx context.Context, db *DB) (*Result, error) {
	opts := p.sys.evalOpts
	opts.Context = ctx
	r, err := p.sys.pl.Run(p.strategy, db.inner, opts)
	if err != nil {
		return nil, err
	}
	return newResult(r), nil
}

// Compare runs all the given strategies, each over a fresh copy of the
// EDB; it fails if any two available strategies disagree on the answers.
// Unavailable strategies are reported in skipped.
func (s *System) Compare(strategies []Strategy, load func() *DB) (results []*Result, skipped map[Strategy]error, err error) {
	raw, sk, err := s.pl.Compare(strategies, func() *engine.DB { return load().inner }, s.evalOpts)
	for _, r := range raw {
		results = append(results, newResult(r))
	}
	return results, sk, err
}

// Explanation holds the program a strategy would evaluate, plus transform
// metadata where applicable.
type Explanation struct {
	Strategy Strategy
	Program  string
	// Class is the factorability certificate ("" when not applicable).
	Class string
	// Trace lists the optimization steps (FactoredOptimized only).
	Trace []string
}

// Explain returns the transformed program for a strategy without
// evaluating anything.
func (s *System) Explain(strategy Strategy) (*Explanation, error) {
	switch strategy {
	case Naive, SemiNaive, TopDown, Tabled:
		return &Explanation{Strategy: strategy, Program: s.pl.Program.String()}, nil
	case Magic:
		m, err := s.pl.MagicProgram()
		if err != nil {
			return nil, err
		}
		return &Explanation{Strategy: strategy, Program: m.Program.String()}, nil
	case SupplementaryMagic:
		m, err := s.pl.SupplementaryMagicProgram()
		if err != nil {
			return nil, err
		}
		return &Explanation{Strategy: strategy, Program: m.Program.String()}, nil
	case Factored:
		fr, err := s.pl.FactoredProgram()
		if err != nil {
			return nil, err
		}
		return &Explanation{Strategy: strategy, Program: fr.Program.String(), Class: fr.Class.String()}, nil
	case FactoredOptimized:
		opt, err := s.pl.OptimizedProgram()
		if err != nil {
			return nil, err
		}
		fr, _ := s.pl.FactoredProgram()
		return &Explanation{
			Strategy: strategy,
			Program:  opt.Program.String(),
			Class:    fr.Class.String(),
			Trace:    opt.Trace,
		}, nil
	case Counting:
		c, err := s.pl.CountingProgram()
		if err != nil {
			return nil, err
		}
		return &Explanation{Strategy: strategy, Program: c.Program.String()}, nil
	case Auto:
		dec, err := s.pl.AutoPick(cost.SnapshotFromAtoms(s.baseEDB, 0))
		if err != nil {
			return nil, err
		}
		return s.Explain(dec.Strategy)
	default:
		return nil, fmt.Errorf("unknown strategy %v", strategy)
	}
}

// PlanInfo re-exports the structured plan description EXPLAIN serves: the
// applied reductions, the transformed rule set, and the stratum schedule.
type PlanInfo = pipeline.ExplainInfo

// Plan compiles strategy (memoized, like Prepare) and describes the
// resulting plan; render it with PlanInfo.Text or JSON-marshal it. It fails
// where Run would fail to transform. Plan(Auto) runs the plan search over
// the Load source's facts, explains the winner, and attaches the candidate
// table (servers with live EDBs substitute their own statistics; see
// cmd/factorlogd).
func (s *System) Plan(strategy Strategy) (*PlanInfo, error) {
	if strategy == Auto {
		dec, err := s.pl.AutoPick(cost.SnapshotFromAtoms(s.baseEDB, 0))
		if err != nil {
			return nil, err
		}
		info, err := s.pl.Explain(dec.Strategy)
		if err != nil {
			return nil, err
		}
		info.Candidates = dec.Candidates
		return info, nil
	}
	return s.pl.Explain(strategy)
}

// Classify reports which factorability theorem (if any) applies to the
// Magic program of this system, with the per-class reasons on failure.
func (s *System) Classify() (string, error) {
	fr, err := s.pl.FactoredProgram()
	if err != nil {
		return "", err
	}
	return fr.Class.String(), nil
}

// FormatTable renders results as an aligned comparison table; columns adapt
// to the contents (see pipeline.Table).
func FormatTable(results []*Result) string {
	raw := make([]*pipeline.RunResult, 0, len(results))
	for _, r := range results {
		if r.raw != nil {
			raw = append(raw, r.raw)
		}
	}
	return pipeline.Table(raw)
}

// FormatResult renders a result compactly.
func FormatResult(r *Result) string {
	return fmt.Sprintf("%s: %d answers, %d inferences, %d facts, %d iterations, max arity %d\nanswers: %s",
		r.Strategy, len(r.Answers), r.Inferences, r.Facts, r.Iterations, r.MaxIDBArity,
		strings.Join(r.Answers, " "))
}

// ErrMutation is returned by Materialized.Apply (and Assert/Retract) when
// a batch is invalid — a non-ground atom or an arity mismatch. The batch is
// rejected whole; test with errors.Is.
var ErrMutation = engine.ErrMutation

// Materialized is a live, incrementally-maintained view of one strategy's
// fixpoint over the System's base facts. Assert and Retract mutate the
// base in atomic batches; each effective batch advances the view's epoch
// and updates the fixpoint by counting-based semi-naive deltas (DRed-style
// stratum rebuilds when a retraction reaches a recursive stratum) instead
// of recomputing from scratch. Answers always reflect the last successful
// epoch. Not safe for concurrent use.
type Materialized struct {
	sys         *System
	mat         *engine.Materialization
	query       ast.Atom
	transformed bool
}

// Materialize builds the materialized view for strategy: the strategy's
// program is compiled once and its fixpoint computed over the Load
// source's facts. Top-down strategies (TopDown, Tabled) have no
// materialized program and are rejected. The view honors the System's
// WithBudget and WithMemoryBudget bounds per mutation batch.
func (s *System) Materialize(strategy Strategy) (*Materialized, error) {
	if !pipeline.MaterializableStrategy(strategy) {
		return nil, fmt.Errorf("factorlog: strategy %v is not materializable", strategy)
	}
	prog, query, transformed, err := s.pl.MaterializedProgram(strategy)
	if err != nil {
		return nil, err
	}
	mat, err := engine.Materialize(prog, s.baseEDB, engine.MaterializeOptions{
		MaxFacts: s.evalOpts.MaxFacts,
		MaxBytes: s.evalOpts.MaxBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Materialized{sys: s, mat: mat, query: query, transformed: transformed}, nil
}

// Assert adds ground facts (e.g. `m.Assert("e(1,2)", "e(2,3)")`) as one
// atomic batch, returning the epoch after it.
func (m *Materialized) Assert(facts ...string) (int64, error) {
	return m.Apply(facts, nil)
}

// Retract removes ground facts as one atomic batch, returning the epoch
// after it. Retracting an absent fact is a no-op, not an error.
func (m *Materialized) Retract(facts ...string) (int64, error) {
	return m.Apply(nil, facts)
}

// Apply applies one batch of assertions and retractions (retractions
// first, so a fact in both lists ends up present). The batch is atomic:
// an invalid atom rejects it whole with ErrMutation, and a mid-batch
// failure rolls the base back to the previous epoch.
func (m *Materialized) Apply(assert, retract []string) (int64, error) {
	assertAtoms, err := parseGroundAtoms(assert)
	if err != nil {
		return m.mat.Epoch(), err
	}
	retractAtoms, err := parseGroundAtoms(retract)
	if err != nil {
		return m.mat.Epoch(), err
	}
	ctx := m.sys.evalOpts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := m.mat.Apply(ctx, assertAtoms, retractAtoms); err != nil {
		return m.mat.Epoch(), err
	}
	return m.mat.Epoch(), nil
}

// Epoch returns the number of effective mutation batches applied since the
// view was built.
func (m *Materialized) Epoch() int64 { return m.mat.Epoch() }

// BaseCount returns the number of live base (asserted) facts.
func (m *Materialized) BaseCount() int { return m.mat.BaseCount() }

// Answers returns the query's current answers, sorted, in the same
// projected "(v1,...,vk)" rendering Run produces.
func (m *Materialized) Answers() ([]string, error) {
	var set map[string]bool
	var err error
	if m.transformed {
		set, err = engine.AnswerSet(m.mat.DB(), m.query)
	} else {
		set, err = m.sys.pl.ProjectAnswers(m.mat.DB())
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

// parseGroundAtoms parses mutation atoms, tolerating the trailing dot of
// .dl fact syntax (`e(1,2).`).
func parseGroundAtoms(in []string) ([]ast.Atom, error) {
	out := make([]ast.Atom, 0, len(in))
	for _, f := range in {
		a, err := parser.ParseAtom(strings.TrimSuffix(strings.TrimSpace(f), "."))
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrMutation, f, err)
		}
		out = append(out, a)
	}
	return out, nil
}
